package main

import (
	"testing"
	"time"
)

// TestParseFlags pins the flag-validation contract: an empty or malformed
// -shards list and non-positive sizes are rejected (exit 2 in main),
// matching the mmlpbench -scale / mmlpdist -protocol convention.
func TestParseFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		ok   bool
	}{
		{"one shard", []string{"-shards", "127.0.0.1:9001"}, true},
		{"three shards", []string{"-shards", "a:1,b:2,c:3"}, true},
		{"whitespace trimmed", []string{"-shards", " a:1 , b:2 "}, true},
		{"no shards flag", nil, false},
		{"empty shards", []string{"-shards", ""}, false},
		{"blank shards", []string{"-shards", "  "}, false},
		{"empty entry", []string{"-shards", "a:1,,b:2"}, false},
		{"duplicate entry", []string{"-shards", "a:1,a:1"}, false},
		{"zero replicas", []string{"-shards", "a:1", "-replicas", "0"}, false},
		{"negative replicas", []string{"-shards", "a:1", "-replicas", "-4"}, false},
		{"zero max-body", []string{"-shards", "a:1", "-max-body", "0"}, false},
		{"zero cooldown", []string{"-shards", "a:1", "-cooldown", "0s"}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg, err := parseFlags(c.args)
			if c.ok {
				if err != nil || cfg == nil {
					t.Fatalf("parseFlags(%q) failed: %v", c.args, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("parseFlags(%q) accepted an invalid value", c.args)
			}
		})
	}
}

// TestParseFlagsDefaults checks the resolved defaults of a minimal command
// line, so a silent default change shows up in review.
func TestParseFlagsDefaults(t *testing.T) {
	cfg, err := parseFlags([]string{"-shards", "a:1,b:2"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != ":8090" || cfg.replicas != 128 || cfg.maxBody != 8<<20 ||
		cfg.cooldown != 5*time.Second || len(cfg.shards) != 2 {
		t.Fatalf("defaults = %+v", cfg)
	}
}
