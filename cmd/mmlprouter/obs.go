package main

import (
	"bytes"
	"log"
	"net/http"
	"net/http/pprof"
	"strconv"

	"repro/internal/obs"
)

// serveDebug exposes net/http/pprof on its own listener — deliberately a
// separate address from the serving port, so profiling endpoints are never
// reachable through whatever exposes the service itself.
func serveDebug(name, addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	log.Printf("%s: pprof on %s", name, addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		log.Printf("%s: debug listener: %v", name, err)
	}
}

// handleMetrics renders the router's own counters in the Prometheus text
// exposition format. Deliberately router-local: shard totals are each
// shard's /metrics to report (scraping them here would double-count in any
// setup where Prometheus also scrapes the shards directly), and the fleet
// aggregate stays on /statsz.
func (rt *router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := rt.client.Stats()
	var b bytes.Buffer

	obs.WriteHeader(&b, "mmlp_router_routed_total", "counter", "Requests admitted and routed to a shard.")
	obs.WriteInt(&b, "mmlp_router_routed_total", "", st.Routed)
	obs.WriteHeader(&b, "mmlp_router_forwarded_total", "counter", "Shard-bound POSTs, including retries, warms and cutover notifications.")
	obs.WriteInt(&b, "mmlp_router_forwarded_total", "", st.Forwarded)
	obs.WriteHeader(&b, "mmlp_router_retried_total", "counter", "Failover hops past the first dialled member.")
	obs.WriteInt(&b, "mmlp_router_retried_total", "", st.Retried)
	obs.WriteHeader(&b, "mmlp_router_shard_down_total", "counter", "Transport failures that put a shard into cooldown.")
	obs.WriteInt(&b, "mmlp_router_shard_down_total", "", st.ShardDown)
	obs.WriteHeader(&b, "mmlp_router_retry_budget_exhausted_total", "counter", "Requests failed fast (503) because the retry token bucket ran dry.")
	obs.WriteInt(&b, "mmlp_router_retry_budget_exhausted_total", "", st.BudgetExhausted)
	obs.WriteHeader(&b, "mmlp_router_replicated_total", "counter", "Write-through warms delivered to backup replicas.")
	obs.WriteInt(&b, "mmlp_router_replicated_total", "", rt.replicated.Load())
	obs.WriteHeader(&b, "mmlp_router_canon_passthrough_total", "counter", "Canon payloads routed by hashing the raw bytes.")
	obs.WriteInt(&b, "mmlp_router_canon_passthrough_total", "", rt.canonPassthrough.Load())

	obs.WriteHeader(&b, "mmlp_router_shards", "gauge", "Ring member count.")
	obs.WriteInt(&b, "mmlp_router_shards", "", int64(len(rt.client.Ring().Members())))
	obs.WriteHeader(&b, "mmlp_router_healthy", "gauge", "Members outside a cooldown window.")
	obs.WriteInt(&b, "mmlp_router_healthy", "", int64(len(rt.client.Healthy())))
	obs.WriteHeader(&b, "mmlp_router_ring_version", "gauge", "Current ring generation.")
	obs.WriteInt(&b, "mmlp_router_ring_version", "", int64(rt.client.Version()))

	obs.WriteHeader(&b, "mmlp_router_forward_duration_seconds", "histogram", "Successful forward latency, send to response headers.")
	obs.WriteHistogram(&b, "mmlp_router_forward_duration_seconds", "", rt.client.ForwardHist())

	writeBuildInfo(&b)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(b.Bytes())
}

// writeBuildInfo emits the standard build-identity gauge.
func writeBuildInfo(b *bytes.Buffer) {
	rev, dirty := obs.BuildInfo()
	obs.WriteHeader(b, "mmlp_build_info", "gauge", "Build identity (constant 1; identity in the labels).")
	obs.WriteInt(b, "mmlp_build_info", `revision="`+rev+`",dirty="`+strconv.FormatBool(dirty)+`"`, 1)
}
