package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/mmlp"
	"repro/internal/obs"
)

// The router mints an X-Mmlp-Trace ID per request (or adopts the client's),
// echoes it on the response, and forwards it — plus the query string — to
// the owning shard, so ?trace=1 and the slow-log correlation both work
// through the routing hop.
func TestTracePropagation(t *testing.T) {
	shards, rt := testFleet(t, 2, nil)
	in := gen.Random(gen.RandomConfig{Agents: 8, MaxDegI: 3, MaxDegK: 3, ExtraCons: 2, ExtraObjs: 1}, 7)

	// Router-minted ID: present on the response and delivered to the shard.
	req := httptest.NewRequest(http.MethodPost, "/v1/solve?trace=1", strings.NewReader(solveBody(t, in, `,"r":3`)))
	w := httptest.NewRecorder()
	rt.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	minted := w.Header().Get(obs.TraceHeader)
	if len(minted) != 16 {
		t.Fatalf("router-minted trace ID = %q, want 16 hex chars", minted)
	}
	seen := func() (traces, queries []string) {
		for _, f := range shards {
			f.mu.Lock()
			traces = append(traces, f.solveTraces...)
			queries = append(queries, f.solveQueries...)
			f.mu.Unlock()
		}
		return
	}
	traces, queries := seen()
	if len(traces) != 1 || traces[0] != minted {
		t.Fatalf("shard saw traces %q, want exactly [%q]", traces, minted)
	}
	if queries[0] != "trace=1" {
		t.Fatalf("shard saw query %q, want trace=1 propagated", queries[0])
	}

	// Client-supplied ID: adopted verbatim, not replaced.
	req = httptest.NewRequest(http.MethodPost, "/v1/solve", strings.NewReader(solveBody(t, in, `,"r":3`)))
	req.Header.Set(obs.TraceHeader, "feedface00000007")
	w = httptest.NewRecorder()
	rt.ServeHTTP(w, req)
	if got := w.Header().Get(obs.TraceHeader); got != "feedface00000007" {
		t.Fatalf("client ID echoed as %q", got)
	}
	traces, _ = seen()
	if traces[len(traces)-1] != "feedface00000007" {
		t.Fatalf("shard saw %q, want the client-supplied ID", traces[len(traces)-1])
	}

	// Batch requests carry one ID for the whole fan-out.
	jobs := make([]string, 0, 4)
	for seed := int64(1); seed <= 4; seed++ {
		jin := gen.Random(gen.RandomConfig{Agents: 6 + int(seed), MaxDegI: 3, MaxDegK: 3, ExtraCons: 2, ExtraObjs: 1}, seed)
		raw, err := json.Marshal(jin)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, `{"instance":`+string(raw)+`,"r":2}`)
	}
	w = post(rt, "/v1/batch", `{"jobs":[`+strings.Join(jobs, ",")+`]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", w.Code, w.Body)
	}
	batchID := w.Header().Get(obs.TraceHeader)
	if len(batchID) != 16 {
		t.Fatalf("batch trace ID = %q", batchID)
	}
	var got []string
	for _, f := range shards {
		f.mu.Lock()
		got = append(got, f.batchTraces...)
		f.mu.Unlock()
	}
	if len(got) == 0 {
		t.Fatal("no shard saw a batch sub-request")
	}
	for _, id := range got {
		if id != batchID {
			t.Fatalf("sub-batch carried %q, want %q on every hop", id, batchID)
		}
	}
}

// /statsz carries the router's forward-latency histogram after traffic.
func TestStatszForwardHistogram(t *testing.T) {
	_, rt := testFleet(t, 2, nil)
	in := gen.Random(gen.RandomConfig{Agents: 8, MaxDegI: 3, MaxDegK: 3, ExtraCons: 2, ExtraObjs: 1}, 9)
	for i := 0; i < 3; i++ {
		if w := post(rt, "/v1/solve", solveBody(t, in, `,"r":3`)); w.Code != http.StatusOK {
			t.Fatalf("solve %d: %d", i, w.Code)
		}
	}
	w := httptest.NewRecorder()
	rt.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/statsz", nil))
	var fleet mmlp.FleetStats
	if err := json.Unmarshal(w.Body.Bytes(), &fleet); err != nil {
		t.Fatal(err)
	}
	fh := fleet.Router.Forward
	if fh == nil || fh.Count < 3 {
		t.Fatalf("forward hist = %+v, want ≥3 observations", fh)
	}
	if fh.QuantileNS(0.5) <= 0 {
		t.Fatalf("forward p50 = %d, want positive", fh.QuantileNS(0.5))
	}
}

// /metrics renders the router counters, the forward histogram and the
// build identity in parseable Prometheus text.
func TestRouterMetrics(t *testing.T) {
	_, rt := testFleet(t, 2, nil)
	in := gen.Random(gen.RandomConfig{Agents: 8, MaxDegI: 3, MaxDegK: 3, ExtraCons: 2, ExtraObjs: 1}, 11)
	if w := post(rt, "/v1/solve", solveBody(t, in, `,"r":3`)); w.Code != http.StatusOK {
		t.Fatalf("solve: %d", w.Code)
	}

	w := httptest.NewRecorder()
	rt.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("metrics status %d", w.Code)
	}
	text := w.Body.String()
	for _, want := range []string{
		"mmlp_router_routed_total 1\n",
		"mmlp_router_shards 2\n",
		"mmlp_router_healthy 2\n",
		"mmlp_router_forward_duration_seconds_count 1\n",
		"# TYPE mmlp_router_forward_duration_seconds histogram\n",
		`mmlp_build_info{revision="`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Fatalf("malformed metrics line %q", line)
		}
	}
}

// The router's /healthz carries the build identity fields.
func TestRouterHealthzBuildInfo(t *testing.T) {
	_, rt := testFleet(t, 1, nil)
	w := httptest.NewRecorder()
	rt.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var body struct {
		Status   string `json:"status"`
		Revision string `json:"revision"`
		Dirty    *bool  `json:"dirty"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatalf("healthz body %q: %v", w.Body, err)
	}
	if body.Status != "ok" || body.Revision == "" || body.Dirty == nil {
		t.Fatalf("healthz = %+v, want status ok with revision and dirty", body)
	}
}
