package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/canon"
	"repro/internal/gen"
	"repro/internal/mmlp"
	"repro/internal/obs"
	"repro/internal/shard"
)

// fakeShard is an httptest stand-in for one mmlpserve process: it answers
// /v1/solve with a body naming itself, /v1/batch with one NDJSON line per
// job, and /statsz?raw=1 with canned numbers. The router's contract with a
// shard is purely HTTP, so routing, merging and aggregation are all
// observable through fakes.
type fakeShard struct {
	name        string
	addr        string
	stats       mmlp.StatsRaw
	lineDelay   time.Duration // slows the batch stream down
	dieAfter    int           // >0: the first /v1/batch aborts after this many lines
	deltaStatus int           // non-zero: /v1/delta answers this status with a typed envelope

	mu            sync.Mutex
	solves        []string // bodies received on /v1/solve
	deltas        []string // bodies received on /v1/delta
	solveTraces   []string // X-Mmlp-Trace headers received on /v1/solve
	solveQueries  []string // raw query strings received on /v1/solve
	batchTraces   []string // X-Mmlp-Trace headers received on /v1/batch
	batch         int      // jobs received on /v1/batch
	batchCalls    int
	canonPayloads [][]byte               // canon payloads received on /v1/batch
	ringUpdates   []mmlp.ShardRingUpdate // bodies received on /admin/ring
}

func (f *fakeShard) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		f.mu.Lock()
		f.solves = append(f.solves, string(body))
		f.solveTraces = append(f.solveTraces, r.Header.Get(obs.TraceHeader))
		f.solveQueries = append(f.solveQueries, r.URL.RawQuery)
		f.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"status\":\"optimal\",\"utility\":1,\"upper_bound\":1,\"latency_ms\":0.5,\"shard\":%q}\n", f.name)
	})
	mux.HandleFunc("POST /v1/delta", func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		f.mu.Lock()
		f.deltas = append(f.deltas, string(body))
		f.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		if f.deltaStatus != 0 {
			w.WriteHeader(f.deltaStatus)
			json.NewEncoder(w).Encode(mmlp.ErrorResponse{Error: mmlp.ErrorDetail{
				Code: mmlp.ErrCodeBaseUnknown, Message: "base key unknown (canned)",
			}})
			return
		}
		fmt.Fprintf(w, "{\"status\":\"approximate\",\"utility\":1,\"upper_bound\":1,\"key\":\"k\",\"dirty_agents\":1,\"total_agents\":2,\"spliced\":true,\"latency_ms\":0.5,\"shard\":%q}\n", f.name)
	})
	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		// Per-job payload echoed as Utility so index remapping is checkable:
		// R for JSON jobs, the payload length for canon jobs (a real shard
		// decodes the payload; the fake only needs a distinguishing echo).
		var utilities []float64
		if r.Header.Get("Content-Type") == mmlp.ContentTypeCanonBatch {
			frame, err := io.ReadAll(r.Body)
			if err != nil {
				w.WriteHeader(http.StatusBadRequest)
				return
			}
			payloads, err := canon.SplitBatch(frame)
			if err != nil {
				w.WriteHeader(http.StatusBadRequest)
				return
			}
			for _, p := range payloads {
				utilities = append(utilities, float64(len(p)))
			}
			f.mu.Lock()
			f.canonPayloads = append(f.canonPayloads, payloads...)
			f.mu.Unlock()
		} else {
			var req mmlp.BatchRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				w.WriteHeader(http.StatusBadRequest)
				return
			}
			for i := range req.Jobs {
				utilities = append(utilities, float64(req.Jobs[i].R))
			}
		}
		f.mu.Lock()
		f.batch += len(utilities)
		f.batchTraces = append(f.batchTraces, r.Header.Get(obs.TraceHeader))
		f.batchCalls++
		die := f.dieAfter > 0 && f.batchCalls == 1
		f.mu.Unlock()
		w.Header().Set("Content-Type", "application/x-ndjson")
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		for i, u := range utilities {
			if die && i == f.dieAfter {
				// Crash mid-stream: the connection aborts after the lines
				// already flushed, exactly like a shard dying mid-batch.
				panic(http.ErrAbortHandler)
			}
			if f.lineDelay > 0 {
				time.Sleep(f.lineDelay)
			}
			enc.Encode(mmlp.BatchItem{
				Index: i,
				SolveResponse: mmlp.SolveResponse{
					Status: "optimal", Utility: u, UpperBound: 1,
				},
			})
			if flusher != nil {
				flusher.Flush()
			}
		}
	})
	mux.HandleFunc("POST /admin/ring", func(w http.ResponseWriter, r *http.Request) {
		var upd mmlp.ShardRingUpdate
		if err := json.NewDecoder(r.Body).Decode(&upd); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		f.mu.Lock()
		f.ringUpdates = append(f.ringUpdates, upd)
		f.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(mmlp.PruneResponse{})
	})
	mux.HandleFunc("GET /statsz", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("raw") != "1" {
			http.Error(w, "want raw=1", http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(f.stats)
	})
	return mux
}

// testFleet boots n fake shards and a router handler over them.
func testFleet(t *testing.T, n int, tweak func(i int, f *fakeShard)) ([]*fakeShard, *router) {
	t.Helper()
	return testFleetR(t, n, 1, tweak)
}

// testFleetR is testFleet with a replica-set size, wired like main: the
// client's cutover hook delivers the router's prune notifications.
func testFleetR(t *testing.T, n, replication int, tweak func(i int, f *fakeShard)) ([]*fakeShard, *router) {
	t.Helper()
	shards := make([]*fakeShard, n)
	addrs := make([]string, n)
	for i := range shards {
		f := &fakeShard{name: fmt.Sprintf("shard%d", i)}
		if tweak != nil {
			tweak(i, f)
		}
		srv := httptest.NewServer(f.handler())
		t.Cleanup(srv.Close)
		u, err := url.Parse(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		f.addr = u.Host
		shards[i] = f
		addrs[i] = u.Host
	}
	ring, err := shard.New(addrs, 32)
	if err != nil {
		t.Fatal(err)
	}
	var rt *router
	client := shard.NewClient(ring, shard.ClientOptions{
		Cooldown:      time.Minute,
		Replication:   replication,
		OnCutoverDone: func(old, new *shard.Ring) { rt.notifyCutover(old, new) },
	})
	rt = newRouter(client, 1<<20)
	return shards, rt
}

func post(h http.Handler, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func solveBody(t *testing.T, in *mmlp.Instance, extra string) string {
	t.Helper()
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	return `{"instance":` + string(raw) + extra + `}`
}

// TestSolveRoutesByCanonicalKey drives many instances — each in two
// syntactic spellings — and checks (a) the response is the owning shard's
// body verbatim, (b) both spellings of one problem land on the same shard,
// (c) the shard named by X-Mmlp-Shard matches the ring's assignment.
func TestSolveRoutesByCanonicalKey(t *testing.T) {
	shards, rt := testFleet(t, 3, nil)
	byAddr := map[string]*fakeShard{}
	for _, f := range shards {
		byAddr[f.addr] = f
	}
	hitShards := map[string]bool{}
	for seed := int64(1); seed <= 12; seed++ {
		in := gen.Random(gen.RandomConfig{Agents: 6 + int(seed), MaxDegI: 3, MaxDegK: 3, ExtraCons: 2, ExtraObjs: 1}, seed)
		req := mmlp.SolveRequest{Instance: in, R: 3}
		key, err := keyOf(&req)
		if err != nil {
			t.Fatal(err)
		}
		owner := rt.client.Ring().Owner(key)
		hitShards[owner] = true

		for variant, body := range map[string]string{
			"original": solveBody(t, in, `,"r":3`),
			"permuted": solveBody(t, gen.Permuted(in), `,"r":3`),
		} {
			w := post(rt, "/v1/solve", body)
			if w.Code != http.StatusOK {
				t.Fatalf("seed %d %s: status %d: %s", seed, variant, w.Code, w.Body)
			}
			if got := w.Header().Get("X-Mmlp-Shard"); got != owner {
				t.Fatalf("seed %d %s: routed to %q, ring owner is %q", seed, variant, got, owner)
			}
			if want := byAddr[owner].name; !strings.Contains(w.Body.String(), want) {
				t.Fatalf("seed %d %s: response %q not from %q", seed, variant, w.Body, want)
			}
		}
	}
	if len(hitShards) < 2 {
		t.Fatalf("all 12 keys landed on one shard; ring is not spreading (%v)", hitShards)
	}
	// Verbatim relay: the fake's body ends with the newline it wrote.
	in := gen.TriNecklace(2)
	w := post(rt, "/v1/solve", solveBody(t, in, ``))
	if !strings.HasSuffix(w.Body.String(), "}\n") || !strings.Contains(w.Body.String(), `"shard"`) {
		t.Fatalf("response not relayed verbatim: %q", w.Body)
	}
}

// TestSolveErrorsMatchServeContract checks the router rejects what a shard
// would reject, with the same status codes, before any forward happens.
func TestSolveErrorsMatchServeContract(t *testing.T) {
	shards, rt := testFleet(t, 2, nil)
	cases := []struct {
		name, body string
		code       int
	}{
		{"malformed JSON", `{"instance": nope}`, http.StatusBadRequest},
		{"missing instance", `{}`, http.StatusBadRequest},
		{"unknown engine", `{"instance":{"num_agents":0},"engine":"simplex"}`, http.StatusBadRequest},
		{"oversized r", `{"instance":{"num_agents":0},"r":2000000000}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		w := post(rt, "/v1/solve", c.body)
		if w.Code != c.code {
			t.Fatalf("%s: status %d, want %d (%s)", c.name, w.Code, c.code, w.Body)
		}
		var er mmlp.ErrorResponse
		if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || er.Error.Message == "" || er.Error.Code == "" {
			t.Fatalf("%s: error body %q (%v)", c.name, w.Body, err)
		}
	}
	for _, f := range shards {
		f.mu.Lock()
		n := len(f.solves)
		f.mu.Unlock()
		if n != 0 {
			t.Fatalf("invalid requests reached shard %s", f.name)
		}
	}
	// Oversized bodies 413 like a shard would.
	big := `{"instance":{"num_agents":1,"objectives":[` + strings.Repeat(`{"terms":[]},`, 200000) + `{"terms":[]}]}}`
	if w := post(rt, "/v1/solve", big); w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d", w.Code)
	}
}

// batchLines decodes an NDJSON body into items keyed by index, failing on
// duplicates.
func batchLines(t *testing.T, body []byte) map[int]mmlp.BatchItem {
	t.Helper()
	items := map[int]mmlp.BatchItem{}
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var item mmlp.BatchItem
		if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if _, dup := items[item.Index]; dup {
			t.Fatalf("index %d emitted twice", item.Index)
		}
		items[item.Index] = item
	}
	return items
}

// batchBody builds a batch over n distinct instances with R cycling 2..3,
// so each job's payload is distinguishable (the fake echoes R as Utility).
func batchBody(t *testing.T, n int) ([]mmlp.SolveRequest, string) {
	t.Helper()
	reqs := make([]mmlp.SolveRequest, n)
	for i := range reqs {
		in := gen.Random(gen.RandomConfig{Agents: 5 + i%7, MaxDegI: 3, MaxDegK: 2, ExtraCons: 2, ExtraObjs: 1}, int64(i+1))
		reqs[i] = mmlp.SolveRequest{Instance: in, R: 2 + i%2}
	}
	raw, err := json.Marshal(mmlp.BatchRequest{Jobs: reqs})
	if err != nil {
		t.Fatal(err)
	}
	return reqs, string(raw)
}

// TestBatchFanOutMerges checks a batch spanning all shards comes back with
// one line per job, indices rewritten to the original positions, and each
// job solved by the shard that owns its key.
func TestBatchFanOutMerges(t *testing.T) {
	shards, rt := testFleet(t, 3, nil)
	const n = 24
	reqs, body := batchBody(t, n)

	w := post(rt, "/v1/batch", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	items := batchLines(t, w.Body.Bytes())
	if len(items) != n {
		t.Fatalf("got %d lines, want %d", len(items), n)
	}
	for i := 0; i < n; i++ {
		item, ok := items[i]
		if !ok {
			t.Fatalf("index %d missing", i)
		}
		if item.Error != "" {
			t.Fatalf("job %d failed: %s", i, item.Error)
		}
		// The fake echoes the job's R as Utility: the index rewrite must
		// pair each line with its original job, not the sub-batch position.
		if item.Utility != float64(reqs[i].R) {
			t.Fatalf("job %d: utility %v, want %v (index remap broken)", i, item.Utility, float64(reqs[i].R))
		}
	}
	// Every job reached exactly one shard, and collectively all of them.
	total := 0
	for _, f := range shards {
		f.mu.Lock()
		total += f.batch
		f.mu.Unlock()
	}
	if total != n {
		t.Fatalf("shards saw %d jobs in total, want %d", total, n)
	}
}

// TestBatchConcurrentWithSlowShard is the race-job test: concurrent batch
// fan-outs while one shard trickles its lines out. Runs under -race in CI;
// correctness here is completeness of every merged stream.
func TestBatchConcurrentWithSlowShard(t *testing.T) {
	_, rt := testFleet(t, 3, func(i int, f *fakeShard) {
		if i == 0 {
			f.lineDelay = 3 * time.Millisecond
		}
	})
	const clients, n = 4, 16
	_, body := batchBody(t, n)
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			w := post(rt, "/v1/batch", body)
			if w.Code != http.StatusOK {
				errs[c] = fmt.Errorf("client %d: status %d", c, w.Code)
				return
			}
			items := map[int]bool{}
			sc := bufio.NewScanner(bytes.NewReader(w.Body.Bytes()))
			sc.Buffer(make([]byte, 1<<20), 1<<20)
			for sc.Scan() {
				var item mmlp.BatchItem
				if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
					errs[c] = fmt.Errorf("client %d: %v", c, err)
					return
				}
				if item.Error != "" {
					errs[c] = fmt.Errorf("client %d job %d: %s", c, item.Index, item.Error)
					return
				}
				items[item.Index] = true
			}
			if len(items) != n {
				errs[c] = fmt.Errorf("client %d: %d lines, want %d", c, len(items), n)
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestBatchFailover points one ring member at a dead port: its jobs must
// fail over to live replicas with no error lines, and the router stats
// must record the retries and the down transition.
func TestBatchFailover(t *testing.T) {
	shards, rt := testFleet(t, 2, nil)
	// Rebuild the router with an extra dead member on the ring.
	addrs := []string{shards[0].addr, shards[1].addr, "127.0.0.1:1"}
	ring, err := shard.New(addrs, 32)
	if err != nil {
		t.Fatal(err)
	}
	rt = newRouter(shard.NewClient(ring, shard.ClientOptions{Cooldown: time.Minute}), 1<<20)

	const n = 24
	_, body := batchBody(t, n)
	w := post(rt, "/v1/batch", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	items := batchLines(t, w.Body.Bytes())
	if len(items) != n {
		t.Fatalf("got %d lines, want %d", len(items), n)
	}
	for i, item := range items {
		if item.Error != "" {
			t.Fatalf("job %d failed despite live replicas: %s", i, item.Error)
		}
	}
	st := rt.client.Stats()
	if st.ShardDown == 0 {
		t.Fatalf("dead member never marked down: %+v", st)
	}
	// A second batch routes straight around the corpse: no new retries.
	before := rt.client.Stats().Retried
	if w := post(rt, "/v1/batch", body); w.Code != http.StatusOK {
		t.Fatalf("second batch: status %d", w.Code)
	}
	if after := rt.client.Stats().Retried; after != before {
		t.Fatalf("second batch re-dialled the down member (%d → %d retries)", before, after)
	}
}

// TestBatchErrorsMatchServeContract: empty batches and invalid job
// envelopes 400 before any forward, with mmlpserve's messages.
func TestBatchErrorsMatchServeContract(t *testing.T) {
	_, rt := testFleet(t, 2, nil)
	if w := post(rt, "/v1/batch", `{"jobs":[]}`); w.Code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d", w.Code)
	}
	w := post(rt, "/v1/batch", `{"jobs":[{"instance":{"num_agents":0}},{"instance":{"num_agents":0},"r":1}]}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("bad job: status %d", w.Code)
	}
	var er mmlp.ErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || !strings.HasPrefix(er.Error.Message, "job 1:") {
		t.Fatalf("error body %q, want a job 1 prefix", w.Body)
	}
}

// TestStatszAggregation serves canned per-shard stats and checks the fleet
// view sums them, carries the per-shard blocks, and reports the router's
// own counters; a dead member appears with ok=false and is excluded from
// the sums.
func TestStatszAggregation(t *testing.T) {
	// Each canned block carries a solve histogram: shard 0 solved 10 jobs
	// around 1µs, shard 1 solved 30 around 1ms. The fleet quantiles must
	// come from the merged histograms, not from combining the per-process
	// P50/P99 fields.
	solveHist := func(n int, ns int64) *obs.HistRaw {
		var h obs.Histogram
		for i := 0; i < n; i++ {
			h.ObserveNS(ns)
		}
		return h.Snapshot()
	}
	stats := []mmlp.StatsRaw{
		{Workers: 2, Jobs: 10, Errors: 1, UptimeNS: 100, P50NS: 5, P99NS: 50, MaxNS: 60, AllocsPerJob: 4,
			Solve: solveHist(10, 1_000),
			Cache: &mmlp.CacheStatsRaw{Hits: 7, Misses: 3, Entries: 3, Bytes: 900, MaxBytes: 1 << 20}},
		{Workers: 2, Jobs: 30, Errors: 0, UptimeNS: 90, P50NS: 8, P99NS: 40, MaxNS: 80, AllocsPerJob: 8,
			Solve: solveHist(30, 1_000_000),
			Cache: &mmlp.CacheStatsRaw{Hits: 25, Misses: 5, Entries: 5, Bytes: 1500, MaxBytes: 1 << 20}},
	}
	shards, rt := testFleet(t, 2, func(i int, f *fakeShard) { f.stats = stats[i] })

	req := httptest.NewRequest(http.MethodGet, "/statsz", nil)
	w := httptest.NewRecorder()
	rt.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("statsz: %d", w.Code)
	}
	var fleet mmlp.FleetStats
	if err := json.Unmarshal(w.Body.Bytes(), &fleet); err != nil {
		t.Fatalf("decode: %v (%s)", err, w.Body)
	}
	if fleet.Router.Shards != 2 || fleet.Router.Healthy != 2 {
		t.Fatalf("router block = %+v", fleet.Router)
	}
	if fleet.Fleet.Jobs != 40 || fleet.Fleet.Errors != 1 || fleet.Fleet.Workers != 4 {
		t.Fatalf("fleet totals = %+v", fleet.Fleet)
	}
	if fleet.Fleet.Cache == nil || fleet.Fleet.Cache.Hits != 32 || fleet.Fleet.Cache.Misses != 8 ||
		fleet.Fleet.Cache.Entries != 8 || fleet.Fleet.Cache.Bytes != 2400 {
		t.Fatalf("fleet cache = %+v", fleet.Fleet.Cache)
	}
	// Job-weighted allocs: (4·10 + 8·30) / 40 = 7.
	if fleet.Fleet.AllocsPerJob != 7 {
		t.Fatalf("fleet allocs/job = %v, want 7", fleet.Fleet.AllocsPerJob)
	}
	// Quantiles derive from the merged histogram: 30 of 40 solves sit in
	// the ~1ms bucket, so both p50 and p99 land there (≤25% bucket error),
	// nowhere near the canned per-process P50NS/P99NS fields. MaxNS stays
	// the true max of the raw fields.
	if fleet.Fleet.Solve == nil || fleet.Fleet.Solve.Count != 40 {
		t.Fatalf("fleet solve hist = %+v", fleet.Fleet.Solve)
	}
	if p := fleet.Fleet.P50NS; p < 1_000_000 || p > 1_250_000 {
		t.Fatalf("fleet p50 = %d, want ~1ms from the merged histogram", p)
	}
	if p := fleet.Fleet.P99NS; p < 1_000_000 || p > 1_250_000 {
		t.Fatalf("fleet p99 = %d, want ~1ms from the merged histogram", p)
	}
	if fleet.Fleet.MaxNS != 80 {
		t.Fatalf("fleet latencies = %+v", fleet.Fleet)
	}
	if len(fleet.Shards) != 2 {
		t.Fatalf("%d shard blocks, want 2", len(fleet.Shards))
	}
	for _, ss := range fleet.Shards {
		if !ss.OK || ss.Stats == nil {
			t.Fatalf("shard block = %+v", ss)
		}
	}

	// With one member dead, its block reports the failure and the sums
	// shrink to the living.
	addrs := []string{shards[0].addr, "127.0.0.1:1"}
	ring, err := shard.New(addrs, 16)
	if err != nil {
		t.Fatal(err)
	}
	rt = newRouter(shard.NewClient(ring, shard.ClientOptions{Cooldown: time.Minute}), 1<<20)
	w = httptest.NewRecorder()
	rt.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/statsz", nil))
	if err := json.Unmarshal(w.Body.Bytes(), &fleet); err != nil {
		t.Fatal(err)
	}
	if fleet.Fleet.Jobs != 10 {
		t.Fatalf("fleet jobs = %d, want the living shard's 10", fleet.Fleet.Jobs)
	}
	deadBlocks := 0
	for _, ss := range fleet.Shards {
		if !ss.OK {
			deadBlocks++
			if ss.Error == "" {
				t.Fatalf("dead shard block has no error: %+v", ss)
			}
		}
	}
	if deadBlocks != 1 {
		t.Fatalf("%d dead blocks, want 1", deadBlocks)
	}
	if fleet.Router.Healthy != 1 {
		t.Fatalf("healthy = %d, want 1", fleet.Router.Healthy)
	}
}

// TestHealthz reports the fleet split.
func TestHealthz(t *testing.T) {
	_, rt := testFleet(t, 3, nil)
	w := httptest.NewRecorder()
	rt.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"shards":3`) {
		t.Fatalf("healthz: %d %s", w.Code, w.Body)
	}
}
