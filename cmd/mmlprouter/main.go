// Command mmlprouter fronts a fleet of mmlpserve shards with consistent-
// hash routing: every solve is forwarded to the shard that owns the
// canonical (instance, options) key, so N independent processes behave
// like one big pool whose per-process result caches partition one
// fleet-wide cache — a key is cached on exactly one shard, and every
// syntactic spelling of one problem routes to it.
//
// Usage:
//
//	mmlprouter -shards host:port,host:port,... [-addr :8090] [-replicas 128]
//	           [-replication 1] [-max-body 8388608] [-cooldown 5s]
//	           [-default-deadline 0] [-retry-budget 0] [-retry-backoff 25ms]
//	           [-debug-addr :6060]
//
// Endpoints (the wire contract matches mmlpserve, so clients need not know
// whether they talk to a shard or the router):
//
//	POST /v1/solve  — routed to the owning shard; the shard's response is
//	                  relayed verbatim (X-Mmlp-Shard names the shard)
//	POST /v1/batch  — jobs fan out to their owning shards as per-shard
//	                  sub-batches; the NDJSON streams re-merge in arrival
//	                  order with indices rewritten to the original request
//	POST /v1/delta  — routed to the shard owning the BASE key (the only
//	                  one whose cache can hold the base record); a 404
//	                  base_unknown is relayed verbatim without marking
//	                  the shard down, and deltas are never write-through
//	                  replicated
//	GET  /v1/capabilities — the router's serving surface (endpoints,
//	                  engines, replication factor) for feature detection
//	GET  /healthz   — router liveness, the fleet's healthy-member count,
//	                  and the build's VCS revision/dirty flag
//	GET  /statsz    — the fleet view: router counters (routed/forwarded/
//	                  retried/shard_down/replicated, ring version, the
//	                  forward-latency histogram), summed per-shard batch
//	                  and cache totals with fleet latency quantiles derived
//	                  from the merged histograms, and the raw per-shard
//	                  blocks
//	GET  /metrics   — the router's own counters, gauges and forward-latency
//	                  histogram in the Prometheus text format
//	GET  /admin/ring  — current ring generation, member set and drain
//	                  progress of an in-flight cutover
//	POST /admin/ring  — propose a new member set ({"members":[...]}). New
//	                  requests route by the new ring immediately; in-flight
//	                  work drains on the old one, then every affected shard
//	                  is told to prune the keys it no longer owns. 409
//	                  while a previous cutover still drains.
//
// -replication R > 1 stores every key on its first R distinct ring
// successors: after a shard answers a solve, the router warms the other
// replicas in the background, so a dead primary costs a failover hop
// instead of a recompute. With the default R=1 behaviour is the classic
// single-copy partition.
//
// -max-body should not exceed the shards' own -max-body: the router
// forwards what it accepts, and a sub-batch a shard rejects (e.g. with
// 413) is terminal for that group's jobs — the shard processed the
// request, so there is nothing to fail over.
//
// Observability: every admitted request gets an X-Mmlp-Trace ID (minted
// here unless the client supplied one) that is echoed on the response and
// forwarded with every shard hop, so the router response, the owning
// shard's ?trace=1 block and its slow-log all share one ID. -debug-addr
// serves net/http/pprof on a separate listener.
//
// A shard that fails at the transport level is marked down for -cooldown
// and its keys are served by the next replica on the ring until it
// recovers; solves are pure functions of their requests, so the failover
// is always safe (at the temporary cost of duplicate cache entries for
// keys solved on a stand-in).
//
// Overload behavior: an X-Mmlp-Deadline-Ms request header (the client's
// remaining budget in whole milliseconds) becomes the request's deadline
// and is re-minted — shrunk by the time already spent — on every shard
// hop; -default-deadline supplies one for clients that sent none. Failover
// hops back off exponentially from -retry-backoff (capped at 1s, with
// seeded jitter; 0 disables the sleeps), and -retry-budget N arms a token
// bucket refilled by successes: when it runs dry, a request due a retry
// hop fails fast with 503 instead of piling on, so a browned-out fleet
// degrades instead of collapsing. A shard's 429 (its -shed admission
// verdict) is relayed verbatim, Retry-After included, without marking the
// shard down — refusing work is a healthy answer.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/shard"
)

// routerConfig is the parsed and validated flag set.
type routerConfig struct {
	addr            string
	shards          []string
	replicas        int
	replication     int
	maxBody         int64
	cooldown        time.Duration
	shutdownGrace   time.Duration
	debugAddr       string
	defaultDeadline time.Duration
	retryBudget     int
	retryBackoff    time.Duration
}

// parseFlags parses and vets the command line. Invalid values are errors —
// main exits 2 on them, matching the mmlpbench -scale / mmlpdist -protocol
// convention.
func parseFlags(args []string) (*routerConfig, error) {
	fs := flag.NewFlagSet("mmlprouter", flag.ContinueOnError)
	addr := fs.String("addr", ":8090", "listen address")
	shards := fs.String("shards", "", "comma-separated shard addresses (host:port,...)")
	replicas := fs.Int("replicas", shard.DefaultReplicas, "virtual nodes per shard on the hash ring")
	replication := fs.Int("replication", 1, "shards holding each key (1 = no replication; >1 adds background write-through to backup replicas)")
	maxBody := fs.Int64("max-body", 8<<20, "largest accepted request body in bytes (keep ≤ every shard's -max-body: a sub-batch a shard rejects as oversized fails that whole group)")
	cooldown := fs.Duration("cooldown", shard.DefaultCooldown, "how long a failed shard stays routed-around")
	shutdownGrace := fs.Duration("shutdown-grace", 10*time.Second, "graceful shutdown window")
	debugAddr := fs.String("debug-addr", "", "serve net/http/pprof on this address (empty disables)")
	defaultDeadline := fs.Duration("default-deadline", 0, "deadline minted for requests without an X-Mmlp-Deadline-Ms header (0 = none)")
	retryBudget := fs.Int("retry-budget", 0, "retry token bucket: failover hops the router may spend beyond each request's first attempt, refilled by successes (0 disables budgeting)")
	retryBackoff := fs.Duration("retry-backoff", shard.DefaultRetryBackoff, "base wait before a failover hop, doubled per hop with seeded jitter (0 disables the sleeps)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}

	cfg := &routerConfig{
		addr: *addr, replicas: *replicas, replication: *replication,
		maxBody: *maxBody, cooldown: *cooldown, shutdownGrace: *shutdownGrace,
		debugAddr: *debugAddr, defaultDeadline: *defaultDeadline,
		retryBudget: *retryBudget, retryBackoff: *retryBackoff,
	}
	if strings.TrimSpace(*shards) == "" {
		return nil, errors.New("-shards must list at least one host:port")
	}
	seen := map[string]bool{}
	for _, s := range strings.Split(*shards, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			return nil, fmt.Errorf("-shards has an empty entry in %q", *shards)
		}
		if seen[s] {
			return nil, fmt.Errorf("-shards lists %q twice", s)
		}
		seen[s] = true
		cfg.shards = append(cfg.shards, s)
	}
	if cfg.replicas <= 0 {
		return nil, fmt.Errorf("-replicas must be positive, got %d", cfg.replicas)
	}
	if cfg.replication <= 0 {
		return nil, fmt.Errorf("-replication must be positive, got %d", cfg.replication)
	}
	if cfg.replication > len(cfg.shards) {
		return nil, fmt.Errorf("-replication %d exceeds the fleet size %d", cfg.replication, len(cfg.shards))
	}
	if cfg.maxBody <= 0 {
		return nil, fmt.Errorf("-max-body must be positive, got %d", cfg.maxBody)
	}
	if cfg.cooldown <= 0 {
		return nil, fmt.Errorf("-cooldown must be positive, got %v", cfg.cooldown)
	}
	if cfg.defaultDeadline < 0 {
		return nil, fmt.Errorf("-default-deadline must be ≥ 0 (0 disables), got %v", cfg.defaultDeadline)
	}
	if cfg.retryBudget < 0 {
		return nil, fmt.Errorf("-retry-budget must be ≥ 0 (0 disables), got %d", cfg.retryBudget)
	}
	if cfg.retryBackoff < 0 {
		return nil, fmt.Errorf("-retry-backoff must be ≥ 0 (0 disables), got %v", cfg.retryBackoff)
	}
	return cfg, nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, "mmlprouter:", err)
		os.Exit(2)
	}

	ring, err := shard.New(cfg.shards, cfg.replicas)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmlprouter:", err)
		os.Exit(2)
	}
	// The cutover hook closes over rt, assigned right after NewClient
	// returns; the hook can only fire after a Propose, which only an HTTP
	// request on rt can trigger, so the assignment happens-before any call.
	var rt *router
	client := shard.NewClient(ring, shard.ClientOptions{
		Cooldown:      cfg.cooldown,
		Replication:   cfg.replication,
		RetryBudget:   cfg.retryBudget,
		RetryBackoff:  cfg.retryBackoff,
		OnCutoverDone: func(old, new *shard.Ring) { rt.notifyCutover(old, new) },
	})
	rt = newRouter(client, cfg.maxBody)
	rt.setDefaultDeadline(cfg.defaultDeadline)
	if cfg.debugAddr != "" {
		go serveDebug("mmlprouter", cfg.debugAddr)
	}
	srv := &http.Server{
		Addr:    cfg.addr,
		Handler: rt,
		// WriteTimeout stays 0: merged batch streams last as long as the
		// slowest shard's solves.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("mmlprouter: listening on %s, routing to %d shards (%s), %d vnodes each",
		cfg.addr, len(ring.Members()), strings.Join(ring.Members(), ", "), ring.Replicas())

	select {
	case err := <-errc:
		log.Fatalf("mmlprouter: %v", err)
	case <-ctx.Done():
	}

	log.Printf("mmlprouter: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), cfg.shutdownGrace)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("mmlprouter: shutdown: %v", err)
	}
}
