package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/canon"
	"repro/internal/mmlp"
)

// deltaBodyFor builds a minimal valid delta request for a synthetic base
// key derived from seed.
func deltaBodyFor(t *testing.T, seed int) (string, canon.Key) {
	t.Helper()
	sum := sha256.Sum256([]byte{byte(seed)})
	base := hex.EncodeToString(sum[:])
	var key canon.Key
	if _, err := hex.Decode(key[:], []byte(base)); err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(mmlp.DeltaRequest{Base: base})
	if err != nil {
		t.Fatal(err)
	}
	return string(raw), key
}

// TestDeltaRoutesByBaseKey: deltas route to the shard owning the BASE key
// — the only process that can hold the base record — and the shard's
// response is relayed verbatim.
func TestDeltaRoutesByBaseKey(t *testing.T) {
	shards, rt := testFleet(t, 3, nil)
	byAddr := map[string]*fakeShard{}
	for _, f := range shards {
		byAddr[f.addr] = f
	}
	hitShards := map[string]bool{}
	for seed := 0; seed < 12; seed++ {
		body, key := deltaBodyFor(t, seed)
		owner := rt.client.Ring().Owner(key)
		hitShards[owner] = true

		w := post(rt, "/v1/delta", body)
		if w.Code != http.StatusOK {
			t.Fatalf("seed %d: status %d: %s", seed, w.Code, w.Body)
		}
		if got := w.Header().Get("X-Mmlp-Shard"); got != owner {
			t.Fatalf("seed %d: routed to %q, base key's owner is %q", seed, got, owner)
		}
		if want := byAddr[owner].name; !strings.Contains(w.Body.String(), want) {
			t.Fatalf("seed %d: response %q not from %q", seed, w.Body, want)
		}
	}
	if len(hitShards) < 2 {
		t.Fatalf("all 12 base keys landed on one shard (%v)", hitShards)
	}
	// The owning shard received the request body verbatim.
	total := 0
	for _, f := range shards {
		f.mu.Lock()
		total += len(f.deltas)
		f.mu.Unlock()
	}
	if total != 12 {
		t.Fatalf("shards saw %d deltas in total, want 12", total)
	}
}

// TestDeltaNoWriteThrough: unlike solves, a delta response is never
// replicated to backups — they lack the base record, so a replayed delta
// would 404 there anyway. With replication 2 exactly one shard sees each
// delta.
func TestDeltaNoWriteThrough(t *testing.T) {
	shards, rt := testFleetR(t, 3, 2, nil)
	body, _ := deltaBodyFor(t, 7)
	if w := post(rt, "/v1/delta", body); w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	total := 0
	for _, f := range shards {
		f.mu.Lock()
		total += len(f.deltas)
		f.mu.Unlock()
	}
	if total != 1 {
		t.Fatalf("%d shards saw the delta, want exactly 1 (no write-through)", total)
	}
}

// TestDeltaRelays404WithoutShardDown: a shard answering 404/base_unknown
// is healthy — it just does not hold that base. The router must relay the
// typed envelope verbatim and must NOT mark the shard down or fail over.
func TestDeltaRelays404WithoutShardDown(t *testing.T) {
	shards, rt := testFleet(t, 3, func(i int, f *fakeShard) { f.deltaStatus = http.StatusNotFound })
	body, _ := deltaBodyFor(t, 3)

	w := post(rt, "/v1/delta", body)
	if w.Code != http.StatusNotFound {
		t.Fatalf("status %d, want 404 (%s)", w.Code, w.Body)
	}
	var er mmlp.ErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || er.Error.Code != mmlp.ErrCodeBaseUnknown {
		t.Fatalf("envelope %s (%v), want base_unknown relayed verbatim", w.Body, err)
	}
	if st := rt.client.Stats(); st.ShardDown != 0 || st.Retried != 0 {
		t.Fatalf("a 404 moved the health state: %+v", st)
	}
	// Exactly one shard was asked — no failover on an application-level 404.
	total := 0
	for _, f := range shards {
		f.mu.Lock()
		total += len(f.deltas)
		f.mu.Unlock()
	}
	if total != 1 {
		t.Fatalf("%d delta forwards, want 1 (404 must not fail over)", total)
	}
}

// TestDeltaErrorsBeforeForward: request-shape failures 400 at the router,
// with the typed envelope, before any shard is dialled.
func TestDeltaErrorsBeforeForward(t *testing.T) {
	shards, rt := testFleet(t, 2, nil)
	cases := []struct {
		name, body string
	}{
		{"malformed JSON", `{"base": nope}`},
		{"missing base", `{}`},
		{"short base", `{"base":"abc"}`},
		{"uppercase base", `{"base":"` + strings.Repeat("AB", 32) + `"}`},
		{"bad edit op", `{"base":"` + strings.Repeat("ab", 32) + `","edits":[{"op":"replace","kind":"constraint"}]}`},
	}
	for _, c := range cases {
		w := post(rt, "/v1/delta", c.body)
		if w.Code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400 (%s)", c.name, w.Code, w.Body)
		}
		var er mmlp.ErrorResponse
		if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || er.Error.Code != mmlp.ErrCodeInvalidArgument {
			t.Fatalf("%s: envelope %s (%v)", c.name, w.Body, err)
		}
	}
	for _, f := range shards {
		f.mu.Lock()
		n := len(f.deltas)
		f.mu.Unlock()
		if n != 0 {
			t.Fatalf("invalid deltas reached shard %s", f.name)
		}
	}
}

// TestRouterCapabilities: the router's discovery document mirrors the
// shard's, naming itself and the fleet replication factor.
func TestRouterCapabilities(t *testing.T) {
	_, rt := testFleetR(t, 2, 2, nil)
	w := httptest.NewRecorder()
	rt.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/capabilities", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("capabilities: %d %s", w.Code, w.Body)
	}
	var caps mmlp.Capabilities
	if err := json.Unmarshal(w.Body.Bytes(), &caps); err != nil {
		t.Fatal(err)
	}
	if caps.Service != "mmlprouter" || !caps.Delta || caps.Replication != 2 {
		t.Fatalf("capabilities = %+v", caps)
	}
	var hasDelta bool
	for _, ep := range caps.Endpoints {
		if strings.Contains(ep, "/v1/delta") {
			hasDelta = true
		}
	}
	if !hasDelta {
		t.Fatalf("endpoints %v do not list /v1/delta", caps.Endpoints)
	}
}

// TestRouterEnvelopeOnMuxFallbacks: the router's own 404/405 fallbacks
// speak the JSON envelope, like the shards'.
func TestRouterEnvelopeOnMuxFallbacks(t *testing.T) {
	_, rt := testFleet(t, 1, nil)
	cases := []struct {
		method, path string
		code         int
		errCode      string
	}{
		{http.MethodGet, "/no/such/path", http.StatusNotFound, mmlp.ErrCodeNotFound},
		{http.MethodGet, "/v1/delta", http.StatusMethodNotAllowed, mmlp.ErrCodeMethodNotAllowed},
	}
	for _, c := range cases {
		w := httptest.NewRecorder()
		rt.ServeHTTP(w, httptest.NewRequest(c.method, c.path, nil))
		if w.Code != c.code {
			t.Fatalf("%s %s: status %d, want %d", c.method, c.path, w.Code, c.code)
		}
		var er mmlp.ErrorResponse
		if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || er.Error.Code != c.errCode || er.Error.Message == "" {
			t.Fatalf("%s %s: envelope %s (%v), want code %q", c.method, c.path, w.Body, err, c.errCode)
		}
	}
}
