package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	maxminlp "repro"
	"repro/internal/batch"
	"repro/internal/delta"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/mmlp"
)

// cachedServer builds a handler whose pool carries a result cache — the
// prerequisite for any delta.
func cachedServer(t *testing.T) *server {
	t.Helper()
	return testServerOpts(t, 1<<20, batch.Options{Workers: 2, Queue: 4, CacheBytes: 1 << 20})
}

// seedBaseHTTP solves in over /v1/solve (R=3, special cases disabled, the
// options every test here shares) and returns the base key.
func seedBaseHTTP(t *testing.T, h http.Handler, in *mmlp.Instance) string {
	t.Helper()
	if w := post(h, "/v1/solve", solveBody(t, in, `,"r":3,"disable_special_cases":true`)); w.Code != http.StatusOK {
		t.Fatalf("base solve: %d %s", w.Code, w.Body)
	}
	return engine.SolveKey(in, engine.Options{R: 3, DisableSpecialCases: true}).String()
}

func deltaBody(t *testing.T, base string, edits []mmlp.RowEdit) string {
	t.Helper()
	raw, err := json.Marshal(mmlp.DeltaRequest{Base: base, Edits: edits})
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// reweightEdits scales the first canonical constraint row of in.
func reweightEdits(in *mmlp.Instance, factor float64) []mmlp.RowEdit {
	row := in.Canonical().Cons[0].Terms
	nt := make([]mmlp.Term, len(row))
	for j, tm := range row {
		nt[j] = mmlp.Term{Agent: tm.Agent, Coef: tm.Coef * factor}
	}
	return []mmlp.RowEdit{{Op: mmlp.EditReweight, Kind: mmlp.EditConstraint, Match: row, Terms: nt}}
}

// TestDeltaEndpoint: the happy path end to end — seed a base over
// /v1/solve, POST an edit, get back the bit-exact solution of the edited
// instance plus the delta accounting, and watch /statsz move.
func TestDeltaEndpoint(t *testing.T) {
	h := cachedServer(t)
	in := gen.Random(gen.RandomConfig{Agents: 40, MaxDegI: 3, MaxDegK: 3, ExtraCons: 12, ExtraObjs: 4}, 9)
	base := seedBaseHTTP(t, h, in)
	edits := reweightEdits(in, 2)

	w := post(h, "/v1/delta", deltaBody(t, base, edits))
	if w.Code != http.StatusOK {
		t.Fatalf("delta: %d %s", w.Code, w.Body)
	}
	var resp mmlp.DeltaResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}

	edited, err := delta.Apply(in.Canonical(), edits)
	if err != nil {
		t.Fatal(err)
	}
	want, err := maxminlp.SolveLocal(edited, maxminlp.LocalOptions{R: 3, DisableSpecialCases: true})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != want.Status.String() || resp.Utility != want.Utility || resp.UpperBound != want.UpperBound {
		t.Fatalf("resp = %+v, want status=%v utility=%v ub=%v", resp, want.Status, want.Utility, want.UpperBound)
	}
	for v := range want.X {
		if resp.X[v] != want.X[v] {
			t.Fatalf("X[%d] = %v, want %v", v, resp.X[v], want.X[v])
		}
	}
	if resp.Key != engine.SolveKey(edited, engine.Options{R: 3, DisableSpecialCases: true}).String() {
		t.Fatalf("key %q is not the edited instance's canonical key", resp.Key)
	}
	if resp.Cached || resp.DirtyAgents <= 0 || resp.DirtyAgents > resp.TotalAgents {
		t.Fatalf("delta accounting = %+v", resp)
	}

	// The same delta again: the centralised path stored the edited key, so
	// this one is a hit.
	w = post(h, "/v1/delta", deltaBody(t, base, edits))
	if w.Code != http.StatusOK {
		t.Fatalf("repeat delta: %d %s", w.Code, w.Body)
	}
	var again mmlp.DeltaResponse
	if err := json.Unmarshal(w.Body.Bytes(), &again); err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatalf("repeat delta not cached: %+v", again)
	}
	for v := range want.X {
		if again.X[v] != want.X[v] {
			t.Fatalf("repeat X[%d] = %v, want %v", v, again.X[v], want.X[v])
		}
	}

	// Counters: one miss (the priced delta), one hit (the repeat).
	sw := httptest.NewRecorder()
	h.ServeHTTP(sw, httptest.NewRequest(http.MethodGet, "/statsz?raw=1", nil))
	var raw mmlp.StatsRaw
	if err := json.Unmarshal(sw.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if raw.DeltaMisses != 1 || raw.DeltaHits != 1 || raw.DirtyAgents != int64(resp.DirtyAgents) {
		t.Fatalf("raw delta counters = hits %d, misses %d, dirty %d (want 1, 1, %d)",
			raw.DeltaHits, raw.DeltaMisses, raw.DirtyAgents, resp.DirtyAgents)
	}
}

// TestDeltaEndpointEmptyEdits: an empty edit set is the base itself — a
// pure cache hit.
func TestDeltaEndpointEmptyEdits(t *testing.T) {
	h := cachedServer(t)
	in := gen.Random(gen.RandomConfig{Agents: 14, MaxDegI: 3, MaxDegK: 3, ExtraCons: 4, ExtraObjs: 2}, 12)
	base := seedBaseHTTP(t, h, in)

	w := post(h, "/v1/delta", deltaBody(t, base, nil))
	if w.Code != http.StatusOK {
		t.Fatalf("empty delta: %d %s", w.Code, w.Body)
	}
	var resp mmlp.DeltaResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Cached || resp.Key != base || resp.DirtyAgents != 0 {
		t.Fatalf("empty-edit response = %+v, want a cache hit on the base key", resp)
	}
}

// TestDeltaEndpointErrors drives every typed failure of the endpoint.
func TestDeltaEndpointErrors(t *testing.T) {
	h := cachedServer(t)
	in := gen.Random(gen.RandomConfig{Agents: 10, MaxDegI: 3, MaxDegK: 3, ExtraCons: 3, ExtraObjs: 1}, 13)
	base := seedBaseHTTP(t, h, in)
	unknown := strings.Repeat("ab", 32)

	cases := []struct {
		name, body string
		code       int
		errCode    string
	}{
		{"malformed JSON", `{"base": nope}`, http.StatusBadRequest, mmlp.ErrCodeInvalidArgument},
		{"short base key", `{"base":"abc"}`, http.StatusBadRequest, mmlp.ErrCodeInvalidArgument},
		{"uppercase base key", `{"base":"` + strings.Repeat("AB", 32) + `"}`, http.StatusBadRequest, mmlp.ErrCodeInvalidArgument},
		{"unknown base", `{"base":"` + unknown + `"}`, http.StatusNotFound, mmlp.ErrCodeBaseUnknown},
		{"bad op", deltaBody(t, base, []mmlp.RowEdit{{Op: "replace", Kind: mmlp.EditConstraint}}), http.StatusBadRequest, mmlp.ErrCodeInvalidArgument},
		{"unknown row", deltaBody(t, base, []mmlp.RowEdit{{Op: mmlp.EditRemove, Kind: mmlp.EditConstraint, Match: []mmlp.Term{{Agent: 0, Coef: 123}}}}), http.StatusBadRequest, mmlp.ErrCodeInvalidArgument},
	}
	for _, c := range cases {
		w := post(h, "/v1/delta", c.body)
		if w.Code != c.code {
			t.Fatalf("%s: status %d, want %d (body %s)", c.name, w.Code, c.code, w.Body)
		}
		var er mmlp.ErrorResponse
		if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || er.Error.Message == "" {
			t.Fatalf("%s: error body %q (%v)", c.name, w.Body, err)
		}
		if er.Error.Code != c.errCode {
			t.Fatalf("%s: error code %q, want %q", c.name, er.Error.Code, c.errCode)
		}
	}
}

// TestDeltaEndpointNoCache: a pool without a result cache cannot hold any
// base — every delta is the typed 404, steering the client to a full
// solve.
func TestDeltaEndpointNoCache(t *testing.T) {
	h := testServer(t, 1<<20) // no CacheBytes
	in := gen.TriNecklace(3)
	if w := post(h, "/v1/solve", solveBody(t, in, ``)); w.Code != http.StatusOK {
		t.Fatalf("solve: %d %s", w.Code, w.Body)
	}
	base := engine.SolveKey(in, engine.Options{}).String()
	w := post(h, "/v1/delta", deltaBody(t, base, nil))
	if w.Code != http.StatusNotFound {
		t.Fatalf("cacheless delta: %d %s", w.Code, w.Body)
	}
	var er mmlp.ErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || er.Error.Code != mmlp.ErrCodeBaseUnknown {
		t.Fatalf("cacheless delta error = %s (%v)", w.Body, err)
	}
}

// TestCapabilitiesEndpoint: the discovery document names the delta
// surface and the wire limits a client must respect.
func TestCapabilitiesEndpoint(t *testing.T) {
	h := cachedServer(t)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/capabilities", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("capabilities: %d %s", w.Code, w.Body)
	}
	var caps mmlp.Capabilities
	if err := json.Unmarshal(w.Body.Bytes(), &caps); err != nil {
		t.Fatal(err)
	}
	if caps.Service != "mmlpserve" || !caps.Delta {
		t.Fatalf("capabilities = %+v", caps)
	}
	var hasDelta bool
	for _, ep := range caps.Endpoints {
		if strings.Contains(ep, "/v1/delta") {
			hasDelta = true
		}
	}
	if !hasDelta {
		t.Fatalf("endpoints %v do not list /v1/delta", caps.Endpoints)
	}
	if len(caps.Engines) != 3 || caps.MaxWireEdits != mmlp.MaxWireEdits || caps.MaxBodyBytes != 1<<20 {
		t.Fatalf("capabilities limits = %+v", caps)
	}
}

// TestErrorEnvelopeOnMuxFallbacks: the mux's own plain-text 404/405
// fallbacks are rewritten into the JSON envelope, so every non-200 from
// the binary is machine-readable.
func TestErrorEnvelopeOnMuxFallbacks(t *testing.T) {
	h := testServer(t, 1<<20)
	cases := []struct {
		method, path string
		code         int
		errCode      string
	}{
		{http.MethodGet, "/no/such/path", http.StatusNotFound, mmlp.ErrCodeNotFound},
		{http.MethodGet, "/v1/delta", http.StatusMethodNotAllowed, mmlp.ErrCodeMethodNotAllowed},
		{http.MethodDelete, "/v1/solve", http.StatusMethodNotAllowed, mmlp.ErrCodeMethodNotAllowed},
	}
	for _, c := range cases {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(c.method, c.path, nil))
		if w.Code != c.code {
			t.Fatalf("%s %s: status %d, want %d", c.method, c.path, w.Code, c.code)
		}
		if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("%s %s: Content-Type %q, want JSON", c.method, c.path, ct)
		}
		var er mmlp.ErrorResponse
		if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || er.Error.Code != c.errCode || er.Error.Message == "" {
			t.Fatalf("%s %s: envelope %s (%v), want code %q", c.method, c.path, w.Body, err, c.errCode)
		}
	}
}
