package main

import (
	"bytes"
	"log"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"repro/internal/batch"
	"repro/internal/obs"
)

// serveDebug exposes net/http/pprof on its own listener — deliberately a
// separate address from the serving port, so profiling endpoints are never
// reachable through whatever exposes the service itself.
func serveDebug(name, addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	log.Printf("%s: pprof on %s", name, addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		log.Printf("%s: debug listener: %v", name, err)
	}
}

// handleMetrics renders the pool's counters and latency histograms in the
// Prometheus text exposition format. The same atomic counters back
// /statsz; this endpoint only changes the spelling, so the two views can
// never disagree.
func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := s.pool.Stats()
	var b bytes.Buffer

	obs.WriteHeader(&b, "mmlp_jobs_total", "counter", "Completed jobs.")
	obs.WriteInt(&b, "mmlp_jobs_total", "", st.Jobs)
	obs.WriteHeader(&b, "mmlp_errors_total", "counter", "Completed jobs that failed or were cancelled.")
	obs.WriteInt(&b, "mmlp_errors_total", "", st.Errors)
	obs.WriteHeader(&b, "mmlp_shed_total", "counter", "Submissions refused at admission on a full queue (HTTP 429).")
	obs.WriteInt(&b, "mmlp_shed_total", "", st.Shed)
	obs.WriteHeader(&b, "mmlp_deadline_expired_total", "counter", "Jobs whose propagated deadline passed while queued (HTTP 504).")
	obs.WriteInt(&b, "mmlp_deadline_expired_total", "", st.DeadlineExpired)
	obs.WriteHeader(&b, "mmlp_delta_hits_total", "counter", "Delta solves answered from the result cache.")
	obs.WriteInt(&b, "mmlp_delta_hits_total", "", st.DeltaHits)
	obs.WriteHeader(&b, "mmlp_delta_misses_total", "counter", "Delta solves that ran the splice pipeline or fell back cold.")
	obs.WriteInt(&b, "mmlp_delta_misses_total", "", st.DeltaMisses)
	obs.WriteHeader(&b, "mmlp_dirty_agents_total", "counter", "Agents re-priced across delta misses.")
	obs.WriteInt(&b, "mmlp_dirty_agents_total", "", st.DirtyAgents)
	obs.WriteHeader(&b, "mmlp_faults_injected_total", "counter", "Faults fired by the -fault-spec chaos layer.")
	obs.WriteInt(&b, "mmlp_faults_injected_total", "", s.fault.Count())
	obs.WriteHeader(&b, "mmlp_workers", "gauge", "Fixed worker pool size.")
	obs.WriteInt(&b, "mmlp_workers", "", int64(st.Workers))
	obs.WriteHeader(&b, "mmlp_uptime_seconds", "gauge", "Pool age.")
	obs.WriteFloat(&b, "mmlp_uptime_seconds", "", st.Elapsed.Seconds())

	if st.Cache != nil {
		obs.WriteHeader(&b, "mmlp_cache_hits_total", "counter", "Result-cache hits.")
		obs.WriteInt(&b, "mmlp_cache_hits_total", "", st.Cache.Hits)
		obs.WriteHeader(&b, "mmlp_cache_misses_total", "counter", "Result-cache misses.")
		obs.WriteInt(&b, "mmlp_cache_misses_total", "", st.Cache.Misses)
		obs.WriteHeader(&b, "mmlp_cache_coalesced_total", "counter", "Lookups that joined an in-flight solve of the same key.")
		obs.WriteInt(&b, "mmlp_cache_coalesced_total", "", st.Cache.Coalesced)
		obs.WriteHeader(&b, "mmlp_cache_evictions_total", "counter", "Entries evicted under byte-budget pressure.")
		obs.WriteInt(&b, "mmlp_cache_evictions_total", "", st.Cache.Evictions)
		obs.WriteHeader(&b, "mmlp_cache_pruned_total", "counter", "Entries dropped because a ring cutover moved their key.")
		obs.WriteInt(&b, "mmlp_cache_pruned_total", "", st.Cache.Pruned)
		obs.WriteHeader(&b, "mmlp_cache_entries", "gauge", "Live cached results.")
		obs.WriteInt(&b, "mmlp_cache_entries", "", int64(st.Cache.Entries))
		obs.WriteHeader(&b, "mmlp_cache_bytes", "gauge", "Bytes held by the result cache.")
		obs.WriteInt(&b, "mmlp_cache_bytes", "", st.Cache.Bytes)
		obs.WriteHeader(&b, "mmlp_cache_max_bytes", "gauge", "Result-cache byte budget.")
		obs.WriteInt(&b, "mmlp_cache_max_bytes", "", st.Cache.MaxBytes)
	}

	obs.WriteHeader(&b, "mmlp_solve_duration_seconds", "histogram", "Successful solve latency.")
	obs.WriteHistogram(&b, "mmlp_solve_duration_seconds", "", st.Solve)
	obs.WriteHeader(&b, "mmlp_stage_duration_seconds", "histogram", "Per-stage latency of the solve pipeline.")
	for stg := obs.Stage(0); stg < obs.NumStages; stg++ {
		if st.Stages[stg] == nil {
			continue
		}
		obs.WriteHistogram(&b, "mmlp_stage_duration_seconds", `stage="`+stg.String()+`"`, st.Stages[stg])
	}

	writeBuildInfo(&b)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(b.Bytes())
}

// writeBuildInfo emits the standard build-identity gauge.
func writeBuildInfo(b *bytes.Buffer) {
	rev, dirty := obs.BuildInfo()
	obs.WriteHeader(b, "mmlp_build_info", "gauge", "Build identity (constant 1; identity in the labels).")
	obs.WriteInt(b, "mmlp_build_info", `revision="`+rev+`",dirty="`+strconv.FormatBool(dirty)+`"`, 1)
}

// logSlow emits the full per-stage breakdown of one solve via slog. The
// trace ID ties the line to the router's request ID, so "every router ID
// lands in exactly one shard's slow-log" is a checkable fleet invariant
// (fleetcheck asserts it with the threshold at 0).
func (s *server) logSlow(traceID string, res *batch.Result, enc time.Duration) {
	tr := res.Trace
	tr.Set(obs.StageEncode, int64(enc))
	attrs := make([]any, 0, 2*int(obs.NumStages)+6)
	attrs = append(attrs,
		"trace", traceID,
		"latency_ms", float64(res.Latency)/1e6,
		"cached", res.Cached,
	)
	for stg := obs.Stage(0); stg < obs.NumStages; stg++ {
		if ns := tr.NS(stg); ns > 0 {
			attrs = append(attrs, stg.String()+"_ms", float64(ns)/1e6)
		}
	}
	s.logger.Info("slow solve", attrs...)
}
