package main

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/batch"
	"repro/internal/gen"
	"repro/internal/mmlp"
	"repro/internal/obs"
)

// A plain solve carries no trace block; ?trace=1 adds one whose stages
// reflect the work actually done (kernel on a cold solve, cache_lookup on
// the warm repeat), and a router-set X-Mmlp-Trace header is echoed.
func TestSolveTraceOptIn(t *testing.T) {
	h := testServerOpts(t, 1<<20, batch.Options{Workers: 2, Queue: 2, CacheBytes: 1 << 20})
	in := gen.Random(gen.RandomConfig{Agents: 10, MaxDegI: 3, MaxDegK: 3, ExtraCons: 3, ExtraObjs: 2}, 3)
	body := solveBody(t, in, `,"r":3`)

	w := post(h, "/v1/solve", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	if bytes.Contains(w.Body.Bytes(), []byte(`"trace"`)) {
		t.Fatalf("trace block present without ?trace=1: %s", w.Body)
	}
	if got := w.Header().Get(obs.TraceHeader); got != "" {
		t.Fatalf("unsolicited %s header %q", obs.TraceHeader, got)
	}

	req := httptest.NewRequest(http.MethodPost, "/v1/solve?trace=1", strings.NewReader(body))
	req.Header.Set(obs.TraceHeader, "deadbeef00000001")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get(obs.TraceHeader); got != "deadbeef00000001" {
		t.Fatalf("trace header echo = %q", got)
	}
	var resp mmlp.SolveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	// This repeat of the first solve is a cache hit: its trace must show
	// the lookup, and must not claim kernel work that never ran.
	if !resp.Cached {
		t.Fatalf("repeat solve not cached: %+v", resp)
	}
	if _, ok := resp.Trace["cache_lookup"]; !ok {
		t.Fatalf("cached solve trace lacks cache_lookup: %v", resp.Trace)
	}
	if _, ok := resp.Trace["kernel"]; ok {
		t.Fatalf("cached solve trace claims kernel time: %v", resp.Trace)
	}

	// A distinct instance, cold: the trace must attribute kernel time.
	in2 := gen.Random(gen.RandomConfig{Agents: 10, MaxDegI: 3, MaxDegK: 3, ExtraCons: 3, ExtraObjs: 2}, 4)
	req2 := httptest.NewRequest(http.MethodPost, "/v1/solve?trace=1", strings.NewReader(solveBody(t, in2, `,"r":3`)))
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, req2)
	var resp2 mmlp.SolveResponse
	if err := json.Unmarshal(rec2.Body.Bytes(), &resp2); err != nil {
		t.Fatal(err)
	}
	if resp2.Cached {
		t.Fatal("distinct instance reported cached")
	}
	if _, ok := resp2.Trace["kernel"]; !ok {
		t.Fatalf("cold solve trace lacks kernel: %v", resp2.Trace)
	}
	if _, ok := resp2.Trace["queue_wait"]; !ok {
		t.Fatalf("cold solve trace lacks queue_wait: %v", resp2.Trace)
	}
}

// /metrics renders parseable Prometheus text whose counters agree with
// the pool's stats, including the solve histogram and build identity.
func TestMetricsEndpoint(t *testing.T) {
	h := testServerOpts(t, 1<<20, batch.Options{Workers: 2, Queue: 2, CacheBytes: 1 << 20})
	in := gen.Random(gen.RandomConfig{Agents: 8, MaxDegI: 2, MaxDegK: 2, ExtraCons: 2, ExtraObjs: 1}, 5)
	for i := 0; i < 2; i++ { // one miss, one hit
		if w := post(h, "/v1/solve", solveBody(t, in, "")); w.Code != http.StatusOK {
			t.Fatalf("solve %d: status %d", i, w.Code)
		}
	}

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	text := rec.Body.String()
	for _, want := range []string{
		"mmlp_jobs_total 2\n",
		"mmlp_errors_total 0\n",
		"mmlp_cache_hits_total 1\n",
		"mmlp_cache_misses_total 1\n",
		"mmlp_solve_duration_seconds_count 2\n",
		`mmlp_stage_duration_seconds_count{stage="kernel"} 1`,
		"# TYPE mmlp_solve_duration_seconds histogram\n",
		`mmlp_build_info{revision="`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, text)
		}
	}
	// Every non-comment line must be "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Fatalf("malformed metrics line %q", line)
		}
	}
}

// /healthz carries the build identity fields.
func TestHealthzBuildInfo(t *testing.T) {
	h := testServer(t, 1<<20)
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var body struct {
		Status   string `json:"status"`
		Revision string `json:"revision"`
		Dirty    *bool  `json:"dirty"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("healthz body %q: %v", rec.Body, err)
	}
	if body.Status != "ok" || body.Revision == "" || body.Dirty == nil {
		t.Fatalf("healthz = %+v, want status ok with revision and dirty", body)
	}
}

// With the threshold at 0 every successful solve logs its breakdown,
// carrying the request's trace ID and per-stage attributes.
func TestSlowLog(t *testing.T) {
	h := testServer(t, 1<<20)
	var buf bytes.Buffer
	h.logger = slog.New(slog.NewTextHandler(&buf, nil))
	h.enableSlowLog(0)

	in := gen.Random(gen.RandomConfig{Agents: 8, MaxDegI: 2, MaxDegK: 2, ExtraCons: 2, ExtraObjs: 1}, 6)
	req := httptest.NewRequest(http.MethodPost, "/v1/solve", strings.NewReader(solveBody(t, in, "")))
	req.Header.Set(obs.TraceHeader, "cafe000000000042")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}

	logged := buf.String()
	for _, want := range []string{"slow solve", "trace=cafe000000000042", "kernel_ms=", "encode_ms=", "latency_ms="} {
		if !strings.Contains(logged, want) {
			t.Fatalf("slow-log missing %q:\n%s", want, logged)
		}
	}

	// Below-threshold solves stay silent.
	h.slowLog = 1 << 40 // ~18 minutes
	buf.Reset()
	if w := post(h, "/v1/solve", solveBody(t, in, "")); w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	if buf.Len() != 0 {
		t.Fatalf("fast solve logged: %s", buf.String())
	}
}
