// Command mmlpserve serves max-min LP solving over HTTP, backed by the
// internal/batch worker pool (fixed workers, per-worker scratch reuse,
// bounded queue with backpressure).
//
// Usage:
//
//	mmlpserve [-addr :8080] [-workers 0] [-queue 0] [-max-body 8388608] [-job-timeout 0]
//	          [-cache-bytes 67108864] [-cache-shards 0]
//
// The solver is deterministic, so results are cached under the canonical
// (instance, options) hash: repeat solves of a slowly-changing topology
// are answered from memory, bit-identically to a fresh solve, and tagged
// "cached": true. -cache-bytes 0 disables caching.
//
// Endpoints:
//
//	POST /v1/solve  — solve one instance; body {"instance": {...}, "engine": "local|dist|dist-compact", "r": 3}
//	POST /v1/batch  — solve many; body {"jobs": [<solve request>, ...]};
//	                  the response streams one NDJSON line per job as it
//	                  completes, each tagged with its request index
//	GET  /healthz   — liveness
//	GET  /statsz    — throughput, latency quantiles, allocs/job, and a
//	                  "cache" block (hits/misses/evictions/coalesced,
//	                  entries, bytes) when caching is enabled
//
// SIGINT/SIGTERM shut down gracefully: in-flight requests finish, then the
// pool drains and the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/batch"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "solver pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "pending-job queue bound (0 = 2×workers)")
	maxBody := flag.Int64("max-body", 8<<20, "largest accepted request body in bytes")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job solve deadline (0 = none)")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "result-cache byte budget (0 disables caching)")
	cacheShards := flag.Int("cache-shards", 0, "result-cache shard count, rounded up to a power of two (0 = default)")
	shutdownGrace := flag.Duration("shutdown-grace", 10*time.Second, "graceful shutdown window")
	flag.Parse()

	if *maxBody <= 0 {
		fmt.Fprintf(os.Stderr, "mmlpserve: -max-body must be positive, got %d\n", *maxBody)
		os.Exit(2)
	}
	if *workers < 0 || *queue < 0 {
		fmt.Fprintf(os.Stderr, "mmlpserve: -workers and -queue must be ≥ 0 (0 = default), got %d and %d\n", *workers, *queue)
		os.Exit(2)
	}
	if *cacheBytes < 0 || *cacheShards < 0 {
		fmt.Fprintf(os.Stderr, "mmlpserve: -cache-bytes and -cache-shards must be ≥ 0, got %d and %d\n", *cacheBytes, *cacheShards)
		os.Exit(2)
	}

	pool := batch.NewPool(batch.Options{
		Workers: *workers, Queue: *queue, JobTimeout: *jobTimeout,
		CacheBytes: *cacheBytes, CacheShards: *cacheShards,
	})
	srv := &http.Server{
		Addr:    *addr,
		Handler: newServer(pool, *maxBody),
		// Bound slow/idle clients so they cannot pin connections forever;
		// WriteTimeout stays 0 because batch NDJSON responses stream for as
		// long as the solves take.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("mmlpserve: listening on %s (workers=%d)", *addr, pool.Workers())

	select {
	case err := <-errc:
		log.Fatalf("mmlpserve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("mmlpserve: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("mmlpserve: shutdown: %v", err)
	}
	pool.Close()
}
