// Command mmlpserve serves max-min LP solving over HTTP, backed by the
// internal/batch worker pool (fixed workers, per-worker scratch reuse,
// bounded queue with backpressure).
//
// Usage:
//
//	mmlpserve [-addr :8080] [-workers N] [-queue N] [-max-body 8388608] [-job-timeout 0]
//	          [-cache-bytes 67108864] [-cache-shards N] [-slow-log 250ms] [-debug-addr :6060]
//	          [-shed] [-fault-spec RULES]
//
// The solver is deterministic, so results are cached under the canonical
// (instance, options) hash: repeat solves of a slowly-changing topology
// are answered from memory, bit-identically to a fresh solve, and tagged
// "cached": true. -cache-bytes 0 disables caching.
//
// Endpoints:
//
//	POST /v1/solve  — solve one instance; body {"instance": {...}, "engine": "local|dist|dist-compact", "r": 3}
//	POST /v1/batch  — solve many; body {"jobs": [<solve request>, ...]};
//	                  the response streams one NDJSON line per job as it
//	                  completes, each tagged with its request index
//	POST /v1/delta  — incremental re-solve: body {"base": "<canonical
//	                  key>", "edits": [...]} prices an edit set against a
//	                  cached base solve, re-running the kernel only for
//	                  the agents within the locality radius of an edited
//	                  row and splicing the rest — bit-identical to a cold
//	                  solve of the edited instance. 404/base_unknown when
//	                  this process does not hold the base
//	GET  /v1/capabilities — the serving surface (endpoints, engines,
//	                  content types, wire limits) for feature detection
//	GET  /healthz   — liveness plus the build's VCS revision/dirty flag
//	GET  /statsz    — throughput, latency quantiles, allocs/job, and a
//	                  "cache" block (hits/misses/evictions/coalesced,
//	                  entries, bytes) when caching is enabled; ?raw=1
//	                  serves the typed machine block (exact counters,
//	                  nanosecond latencies, mergeable latency histograms)
//	                  that mmlprouter aggregates into its fleet view
//	GET  /metrics   — the same counters plus solve/per-stage latency
//	                  histograms in the Prometheus text format
//
// Observability: ?trace=1 on /v1/solve adds a per-stage "trace" block to
// the response; an X-Mmlp-Trace request header (normally set by the
// router) is echoed on the response. -slow-log DURATION logs the full
// stage breakdown via log/slog for any solve at or above the threshold
// (0 logs every solve; negative, the default, disables). -debug-addr
// serves net/http/pprof on a separate listener.
//
// Overload behavior: an X-Mmlp-Deadline-Ms request header (normally
// minted by the router from the client deadline) becomes a context
// deadline, so work that can no longer make it back in time is abandoned
// — a job whose deadline passes while still queued is answered 504
// without touching the solver. With -shed, /v1/solve stops queueing
// behind a full queue and answers 429 with a Retry-After derived from
// the live queue-wait median instead. -fault-spec RULES enables the
// deterministic chaos layer (internal/fault) for testing: latency,
// error, blackhole, slow-body and truncation faults by path and rate;
// off by default and zero-cost when off.
//
// SIGINT/SIGTERM shut down gracefully: in-flight requests finish, then the
// pool drains and the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/batch"
	"repro/internal/fault"
)

// serveConfig is the parsed and validated flag set.
type serveConfig struct {
	addr          string
	workers       int
	queue         int
	maxBody       int64
	jobTimeout    time.Duration
	cacheBytes    int64
	cacheShards   int
	shutdownGrace time.Duration
	slowLog       time.Duration
	debugAddr     string
	shed          bool
	fault         *fault.Injector // parsed -fault-spec; nil when disabled
}

// parseFlags parses and vets the command line; main exits 2 on an error,
// matching the mmlpbench -scale / mmlpdist -protocol convention. -workers,
// -queue and -cache-shards size real resources, so an explicitly passed
// value must be positive: omitting the flag selects the auto default
// (GOMAXPROCS workers, 2×workers queue slots, the cache's shard default),
// while an explicit 0 or negative is rejected rather than silently
// reinterpreted. -cache-bytes 0 stays meaningful (it disables caching);
// only negative budgets are rejected.
func parseFlags(args []string) (*serveConfig, error) {
	fs := flag.NewFlagSet("mmlpserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "solver pool size (omit for GOMAXPROCS)")
	queue := fs.Int("queue", 0, "pending-job queue bound (omit for 2×workers)")
	maxBody := fs.Int64("max-body", 8<<20, "largest accepted request body in bytes")
	jobTimeout := fs.Duration("job-timeout", 0, "per-job solve deadline (0 = none)")
	cacheBytes := fs.Int64("cache-bytes", 64<<20, "result-cache byte budget (0 disables caching)")
	cacheShards := fs.Int("cache-shards", 0, "result-cache shard count, rounded up to a power of two (omit for the default)")
	shutdownGrace := fs.Duration("shutdown-grace", 10*time.Second, "graceful shutdown window")
	slowLog := fs.Duration("slow-log", -1, "log the per-stage breakdown of solves at or above this latency (0 logs every solve; negative disables)")
	debugAddr := fs.String("debug-addr", "", "serve net/http/pprof on this address (empty disables)")
	shed := fs.Bool("shed", false, "shed /v1/solve on a full queue (429 + Retry-After) instead of applying backpressure")
	faultSpec := fs.String("fault-spec", "", "fault-injection rules for chaos testing (e.g. 'path=/v1/ latency=800ms'; empty disables)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	injector, err := fault.Parse(*faultSpec)
	if err != nil {
		return nil, err
	}

	// Distinguish "flag omitted" (auto default) from "explicit value": only
	// the latter must be positive.
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	for name, v := range map[string]int{"workers": *workers, "queue": *queue, "cache-shards": *cacheShards} {
		if explicit[name] && v <= 0 {
			return nil, fmt.Errorf("-%s must be positive, got %d (omit the flag for the default)", name, v)
		}
		if v < 0 { // unreachable via flags but keeps the invariant obvious
			return nil, fmt.Errorf("-%s must be positive, got %d", name, v)
		}
	}
	if *maxBody <= 0 {
		return nil, fmt.Errorf("-max-body must be positive, got %d", *maxBody)
	}
	if *cacheBytes < 0 {
		return nil, fmt.Errorf("-cache-bytes must be ≥ 0 (0 disables caching), got %d", *cacheBytes)
	}
	if *jobTimeout < 0 {
		return nil, fmt.Errorf("-job-timeout must be ≥ 0, got %v", *jobTimeout)
	}
	return &serveConfig{
		addr: *addr, workers: *workers, queue: *queue, maxBody: *maxBody,
		jobTimeout: *jobTimeout, cacheBytes: *cacheBytes, cacheShards: *cacheShards,
		shutdownGrace: *shutdownGrace, slowLog: *slowLog, debugAddr: *debugAddr,
		shed: *shed, fault: injector,
	}, nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, "mmlpserve:", err)
		os.Exit(2)
	}

	pool := batch.NewPool(batch.Options{
		Workers: cfg.workers, Queue: cfg.queue, JobTimeout: cfg.jobTimeout,
		CacheBytes: cfg.cacheBytes, CacheShards: cfg.cacheShards,
	})
	h := newServer(pool, cfg.maxBody)
	if cfg.slowLog >= 0 {
		h.enableSlowLog(cfg.slowLog)
	}
	if cfg.shed {
		h.enableShed()
	}
	h.setFault(cfg.fault)
	if cfg.debugAddr != "" {
		go serveDebug("mmlpserve", cfg.debugAddr)
	}
	srv := &http.Server{
		Addr: cfg.addr,
		// The fault wrap is the identity when -fault-spec is empty, so the
		// production handler chain is untouched by the chaos layer.
		Handler: cfg.fault.Wrap(h),
		// Bound slow/idle clients so they cannot pin connections forever;
		// WriteTimeout stays 0 because batch NDJSON responses stream for as
		// long as the solves take.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("mmlpserve: listening on %s (workers=%d)", cfg.addr, pool.Workers())

	select {
	case err := <-errc:
		log.Fatalf("mmlpserve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("mmlpserve: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), cfg.shutdownGrace)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("mmlpserve: shutdown: %v", err)
	}
	pool.Close()
}
