package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	maxminlp "repro"
	"repro/internal/batch"
	"repro/internal/gen"
	"repro/internal/mmlp"
)

// testServer builds a handler on a small pool (no result cache).
func testServer(t *testing.T, maxBody int64) *server {
	t.Helper()
	return testServerOpts(t, maxBody, batch.Options{Workers: 2, Queue: 2})
}

// testServerOpts builds a handler on a pool with explicit options.
func testServerOpts(t *testing.T, maxBody int64, o batch.Options) *server {
	t.Helper()
	pool := batch.NewPool(o)
	t.Cleanup(pool.Close)
	return newServer(pool, maxBody)
}

func post(h http.Handler, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func solveBody(t *testing.T, in *mmlp.Instance, extra string) string {
	t.Helper()
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	return `{"instance":` + string(raw) + extra + `}`
}

func TestSolveEndpoint(t *testing.T) {
	h := testServer(t, 1<<20)
	in := gen.Random(gen.RandomConfig{Agents: 12, MaxDegI: 3, MaxDegK: 3, ExtraCons: 4, ExtraObjs: 2}, 1)

	w := post(h, "/v1/solve", solveBody(t, in, `,"r":3,"disable_special_cases":true`))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp mmlp.SolveResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	want, err := maxminlp.SolveLocal(in, maxminlp.LocalOptions{R: 3, DisableSpecialCases: true})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != want.Status.String() || resp.Utility != want.Utility || resp.UpperBound != want.UpperBound {
		t.Fatalf("resp = %+v, want status=%v utility=%v ub=%v", resp, want.Status, want.Utility, want.UpperBound)
	}
	for v := range want.X {
		if resp.X[v] != want.X[v] {
			t.Fatalf("X[%d] = %v, want %v", v, resp.X[v], want.X[v])
		}
	}
}

func TestSolveEndpointDistributed(t *testing.T) {
	h := testServer(t, 1<<20)
	in := gen.TriNecklace(4)
	w := post(h, "/v1/solve", solveBody(t, in, `,"engine":"dist"`))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp mmlp.SolveResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Rounds == 0 || resp.Messages == 0 {
		t.Fatalf("distributed response missing traffic stats: %+v", resp)
	}
}

func TestSolveEndpointErrors(t *testing.T) {
	h := testServer(t, 256)
	cases := []struct {
		name, body string
		code       int
		errCode    string
	}{
		{"malformed JSON", `{"instance": nope}`, http.StatusBadRequest, mmlp.ErrCodeInvalidArgument},
		{"missing instance", `{}`, http.StatusBadRequest, mmlp.ErrCodeInvalidArgument},
		{"unknown engine", `{"instance":{"num_agents":0},"engine":"simplex"}`, http.StatusBadRequest, mmlp.ErrCodeInvalidArgument},
		{"oversized r", `{"instance":{"num_agents":0},"r":2000000000}`, http.StatusBadRequest, mmlp.ErrCodeInvalidArgument},
		{"oversized num_agents", `{"instance":{"num_agents":2000000000}}`, http.StatusBadRequest, mmlp.ErrCodeInvalidArgument},
		{"invalid instance", `{"instance":{"num_agents":1,"constraints":[{"terms":[{"agent":0,"coef":-1}]}]}}`, http.StatusBadRequest, mmlp.ErrCodeInvalidArgument},
		{"oversized body", `{"instance":{"num_agents":1,"objectives":[` + strings.Repeat(`{"terms":[]},`, 64) + `{"terms":[]}]}}`, http.StatusRequestEntityTooLarge, mmlp.ErrCodeBodyTooLarge},
	}
	for _, c := range cases {
		w := post(h, "/v1/solve", c.body)
		if w.Code != c.code {
			t.Fatalf("%s: status %d, want %d (body %s)", c.name, w.Code, c.code, w.Body)
		}
		var er mmlp.ErrorResponse
		if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || er.Error.Message == "" {
			t.Fatalf("%s: error body %q (%v)", c.name, w.Body, err)
		}
		if er.Error.Code != c.errCode {
			t.Fatalf("%s: error code %q, want %q", c.name, er.Error.Code, c.errCode)
		}
	}
}

// TestBatchEndpoint checks the NDJSON stream: one line per job, every
// index present exactly once, and each payload bit-identical to the
// sequential solve of that job.
func TestBatchEndpoint(t *testing.T) {
	h := testServer(t, 1<<20)
	const n = 9
	ins := make([]*mmlp.Instance, n)
	reqs := make([]mmlp.SolveRequest, n)
	for i := range reqs {
		ins[i] = gen.Random(gen.RandomConfig{Agents: 8 + i, MaxDegI: 3, MaxDegK: 3, ExtraCons: 3, ExtraObjs: 1}, int64(i+1))
		reqs[i] = mmlp.SolveRequest{Instance: ins[i], R: 3, DisableSpecialCases: true}
	}
	body, err := json.Marshal(mmlp.BatchRequest{Jobs: reqs})
	if err != nil {
		t.Fatal(err)
	}
	w := post(h, "/v1/batch", string(body))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}

	seen := make(map[int]bool)
	sc := bufio.NewScanner(bytes.NewReader(w.Body.Bytes()))
	for sc.Scan() {
		var item mmlp.BatchItem
		if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if item.Error != "" {
			t.Fatalf("job %d failed: %s", item.Index, item.Error)
		}
		if seen[item.Index] {
			t.Fatalf("index %d emitted twice", item.Index)
		}
		seen[item.Index] = true
		want, err := maxminlp.SolveLocal(ins[item.Index], maxminlp.LocalOptions{R: 3, DisableSpecialCases: true})
		if err != nil {
			t.Fatal(err)
		}
		for v := range want.X {
			if item.X[v] != want.X[v] {
				t.Fatalf("job %d: X[%d] = %v, want %v", item.Index, v, item.X[v], want.X[v])
			}
		}
	}
	if len(seen) != n {
		t.Fatalf("got %d lines, want %d", len(seen), n)
	}
}

func TestBatchEndpointErrors(t *testing.T) {
	h := testServer(t, 1<<20)
	if w := post(h, "/v1/batch", `{"jobs":[]}`); w.Code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d", w.Code)
	}
	if w := post(h, "/v1/batch", `{"jobs":[{"instance":{"num_agents":0},"r":1}]}`); w.Code != http.StatusBadRequest {
		t.Fatalf("bad job: status %d", w.Code)
	}
	// Invalid instance *contents* surface as a per-job error line, not a
	// request-level failure: one bad job must not kill the batch.
	body := `{"jobs":[{"instance":{"num_agents":1,"constraints":[{"terms":[{"agent":0,"coef":-1}]}]}}]}`
	w := post(h, "/v1/batch", body)
	if w.Code != http.StatusOK {
		t.Fatalf("invalid-instance job: status %d", w.Code)
	}
	var item mmlp.BatchItem
	if err := json.Unmarshal(bytes.TrimSpace(w.Body.Bytes()), &item); err != nil {
		t.Fatal(err)
	}
	if item.Index != 0 || item.Error == "" {
		t.Fatalf("item = %+v, want index 0 with error", item)
	}
}

func TestHealthAndStats(t *testing.T) {
	h := testServer(t, 1<<20)
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"ok"`) {
		t.Fatalf("healthz: %d %s", w.Code, w.Body)
	}

	// Solve once so the stats move.
	in := gen.TriNecklace(3)
	if w := post(h, "/v1/solve", solveBody(t, in, ``)); w.Code != http.StatusOK {
		t.Fatalf("solve: %d %s", w.Code, w.Body)
	}
	req = httptest.NewRequest(http.MethodGet, "/statsz", nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("statsz: %d", w.Code)
	}
	var st struct {
		Workers int   `json:"workers"`
		Jobs    int64 `json:"jobs"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Workers != 2 || st.Jobs < 1 {
		t.Fatalf("statsz = %s", w.Body)
	}
}

// TestStatszCacheUnderConcurrentLoad is the acceptance check for the
// serving integration: many goroutines solve the same instance against a
// cached pool (run under -race in CI), the responses are all bit-identical
// with the later ones tagged "cached", and /statsz reports live
// hit/miss/coalesced counters that add up to the request count.
func TestStatszCacheUnderConcurrentLoad(t *testing.T) {
	h := testServerOpts(t, 1<<20, batch.Options{Workers: 4, Queue: 8, CacheBytes: 1 << 20, CacheShards: 4})
	in := gen.Random(gen.RandomConfig{Agents: 14, MaxDegI: 3, MaxDegK: 3, ExtraCons: 4, ExtraObjs: 2}, 21)
	body := solveBody(t, in, `,"r":3,"disable_special_cases":true`)
	want, err := maxminlp.SolveLocal(in, maxminlp.LocalOptions{R: 3, DisableSpecialCases: true})
	if err != nil {
		t.Fatal(err)
	}

	const requests = 32
	responses := make([]mmlp.SolveResponse, requests)
	var wg sync.WaitGroup
	for g := 0; g < requests; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := post(h, "/v1/solve", body)
			if w.Code != http.StatusOK {
				t.Errorf("request %d: status %d: %s", g, w.Code, w.Body)
				return
			}
			if err := json.Unmarshal(w.Body.Bytes(), &responses[g]); err != nil {
				t.Errorf("request %d: %v", g, err)
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	cachedCount := 0
	for g, resp := range responses {
		if resp.Cached {
			cachedCount++
		}
		for v := range want.X {
			if resp.X[v] != want.X[v] {
				t.Fatalf("request %d: X[%d] = %v, want %v", g, v, resp.X[v], want.X[v])
			}
		}
	}
	if cachedCount == 0 {
		t.Fatal("no response was answered from the cache")
	}

	req := httptest.NewRequest(http.MethodGet, "/statsz", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	var st struct {
		Jobs  int64 `json:"jobs"`
		Cache *struct {
			Hits      int64 `json:"hits"`
			Misses    int64 `json:"misses"`
			Coalesced int64 `json:"coalesced"`
			Entries   int   `json:"entries"`
			Bytes     int64 `json:"bytes"`
			MaxBytes  int64 `json:"max_bytes"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatalf("statsz: %v (%s)", err, w.Body)
	}
	if st.Cache == nil {
		t.Fatalf("statsz has no cache block: %s", w.Body)
	}
	if st.Cache.Hits+st.Cache.Misses+st.Cache.Coalesced != requests {
		t.Fatalf("cache counters %+v do not add up to %d requests", st.Cache, requests)
	}
	if st.Cache.Hits == 0 || st.Cache.Misses == 0 || st.Cache.Entries != 1 || st.Cache.Bytes == 0 {
		t.Fatalf("cache block = %+v", st.Cache)
	}

	// The uncached server keeps /statsz free of the block.
	plain := testServer(t, 1<<20)
	w = httptest.NewRecorder()
	plain.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/statsz", nil))
	if strings.Contains(w.Body.String(), `"cache"`) {
		t.Fatalf("uncached /statsz reports a cache block: %s", w.Body)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	h := testServer(t, 1<<20)
	req := httptest.NewRequest(http.MethodGet, "/v1/solve", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/solve: status %d", w.Code)
	}
}

// TestStatszRaw checks the machine block the shard router scrapes: typed
// fields, exact counters, and agreement with the human view.
func TestStatszRaw(t *testing.T) {
	h := testServerOpts(t, 1<<20, batch.Options{Workers: 2, Queue: 2, CacheBytes: 1 << 20})
	in := gen.TriNecklace(3)
	body := solveBody(t, in, ``)
	for i := 0; i < 3; i++ { // 1 miss + 2 hits
		if w := post(h, "/v1/solve", body); w.Code != http.StatusOK {
			t.Fatalf("solve %d: %d %s", i, w.Code, w.Body)
		}
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/statsz?raw=1", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("statsz?raw=1: %d", w.Code)
	}
	var raw mmlp.StatsRaw
	if err := json.Unmarshal(w.Body.Bytes(), &raw); err != nil {
		t.Fatalf("raw statsz did not decode into mmlp.StatsRaw: %v (%s)", err, w.Body)
	}
	if raw.Workers != 2 || raw.Jobs != 3 || raw.Errors != 0 {
		t.Fatalf("raw = %+v", raw)
	}
	if raw.Cache == nil || raw.Cache.Misses != 1 || raw.Cache.Hits != 2 || raw.Cache.Entries != 1 {
		t.Fatalf("raw cache = %+v", raw.Cache)
	}
	if raw.P50NS <= 0 || raw.MaxNS < raw.P50NS || raw.UptimeNS <= 0 {
		t.Fatalf("raw latencies = %+v", raw)
	}
}

// TestParseFlags pins the flag-validation contract: explicitly non-positive
// resource sizes are rejected (exit 2 in main), while omitting a flag keeps
// its auto default; -cache-bytes 0 stays the documented cache-off switch.
func TestParseFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		ok   bool
	}{
		{"defaults", nil, true},
		{"all set", []string{"-workers", "4", "-queue", "8", "-cache-shards", "2", "-cache-bytes", "1024"}, true},
		{"cache off", []string{"-cache-bytes", "0"}, true},
		{"explicit zero workers", []string{"-workers", "0"}, false},
		{"negative workers", []string{"-workers", "-1"}, false},
		{"explicit zero queue", []string{"-queue", "0"}, false},
		{"negative queue", []string{"-queue", "-3"}, false},
		{"explicit zero cache-shards", []string{"-cache-shards", "0"}, false},
		{"negative cache-shards", []string{"-cache-shards", "-2"}, false},
		{"negative cache-bytes", []string{"-cache-bytes", "-1"}, false},
		{"zero max-body", []string{"-max-body", "0"}, false},
		{"negative job-timeout", []string{"-job-timeout", "-1s"}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg, err := parseFlags(c.args)
			if c.ok && (err != nil || cfg == nil) {
				t.Fatalf("parseFlags(%q) failed: %v", c.args, err)
			}
			if !c.ok && err == nil {
				t.Fatalf("parseFlags(%q) accepted an invalid value", c.args)
			}
		})
	}
}
