package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/batch"
	"repro/internal/canon"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/mmlp"
)

// rawPost sends a binary body with explicit content negotiation headers.
func rawPost(h http.Handler, path, contentType, accept string, body []byte) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func canonInstance(seed int64) *mmlp.Instance {
	return gen.Random(gen.RandomConfig{Agents: 12, MaxDegI: 3, MaxDegK: 3, ExtraCons: 4, ExtraObjs: 2}, seed)
}

// TestSolveEndpointCanon: a canon-encoded request returns the same JSON
// response as the JSON spelling of the same instance, and the two
// encodings share one cache line.
func TestSolveEndpointCanon(t *testing.T) {
	h := testServerOpts(t, 1<<20, batch.Options{Workers: 2, Queue: 2, CacheBytes: 1 << 20})
	in := canonInstance(7)

	jw := post(h, "/v1/solve", solveBody(t, in, `,"engine":"dist","r":3`))
	if jw.Code != http.StatusOK {
		t.Fatalf("json solve: %d %s", jw.Code, jw.Body)
	}
	var jresp mmlp.SolveResponse
	if err := json.Unmarshal(jw.Body.Bytes(), &jresp); err != nil {
		t.Fatal(err)
	}

	payload := engine.EncodeCanon(in, engine.Options{Engine: engine.Distributed, R: 3})
	cw := rawPost(h, "/v1/solve", mmlp.ContentTypeCanon, "", payload)
	if cw.Code != http.StatusOK {
		t.Fatalf("canon solve: %d %s", cw.Code, cw.Body)
	}
	if ct := cw.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("canon solve Content-Type = %q", ct)
	}
	var cresp mmlp.SolveResponse
	if err := json.Unmarshal(cw.Body.Bytes(), &cresp); err != nil {
		t.Fatal(err)
	}
	if !cresp.Cached {
		t.Fatal("canon request missed the cache the JSON solve warmed")
	}
	if cresp.Status != jresp.Status || cresp.Utility != jresp.Utility || cresp.UpperBound != jresp.UpperBound {
		t.Fatalf("canon resp %+v differs from json resp %+v", cresp, jresp)
	}
	for v := range jresp.X {
		if cresp.X[v] != jresp.X[v] {
			t.Fatalf("X[%d] = %v, want %v", v, cresp.X[v], jresp.X[v])
		}
	}
	if cresp.Rounds != jresp.Rounds || cresp.Messages != jresp.Messages || cresp.Bytes != jresp.Bytes {
		t.Fatalf("canon traffic %+v differs from json %+v", cresp, jresp)
	}
}

// TestSolveEndpointCanonErrors: hostile canon bodies surface as JSON
// error responses with the right status, never a panic or a 500.
func TestSolveEndpointCanonErrors(t *testing.T) {
	h := testServer(t, 4096)
	valid := engine.EncodeCanon(gen.TriNecklace(2), engine.Options{})
	cases := []struct {
		name string
		body []byte
		code int
	}{
		{"wrong magic", []byte("not canon at all"), http.StatusBadRequest},
		{"truncated", valid[:len(valid)-3], http.StatusBadRequest},
		{"trailing bytes", append(append([]byte{}, valid...), 0), http.StatusBadRequest},
		{"magic only", []byte(canon.SolveMagic), http.StatusBadRequest},
		{"oversized body", make([]byte, 8192), http.StatusRequestEntityTooLarge},
	}
	for _, c := range cases {
		w := rawPost(h, "/v1/solve", mmlp.ContentTypeCanon, "", c.body)
		if w.Code != c.code {
			t.Fatalf("%s: status %d, want %d (body %s)", c.name, w.Code, c.code, w.Body)
		}
		var er mmlp.ErrorResponse
		if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || er.Error.Message == "" || er.Error.Code == "" {
			t.Fatalf("%s: error body %q (%v)", c.name, w.Body, err)
		}
	}
}

// TestBatchEndpointCanon drives both negotiation axes at once: a canon
// batch frame in, the binary result frame out, and every record
// bit-identical to the NDJSON answer for the same jobs.
func TestBatchEndpointCanon(t *testing.T) {
	h := testServerOpts(t, 1<<20, batch.Options{Workers: 2, Queue: 4, CacheBytes: 1 << 20})
	const n = 5
	payloads := make([][]byte, n)
	reqs := make([]mmlp.SolveRequest, n)
	for i := range payloads {
		in := canonInstance(int64(i + 1))
		payloads[i] = engine.EncodeCanon(in, engine.Options{R: 3, DisableSpecialCases: true})
		reqs[i] = mmlp.SolveRequest{Instance: in, R: 3, DisableSpecialCases: true}
	}
	frame := canon.AppendBatch(nil, payloads)

	// JSON batch first: it computes every answer and warms the cache, so
	// the canon batch afterwards must hit every line.
	body, err := json.Marshal(mmlp.BatchRequest{Jobs: reqs})
	if err != nil {
		t.Fatal(err)
	}
	jw := post(h, "/v1/batch", string(body))
	if jw.Code != http.StatusOK {
		t.Fatalf("json batch: %d %s", jw.Code, jw.Body)
	}

	// Canon in, binary results out.
	w := rawPost(h, "/v1/batch", mmlp.ContentTypeCanonBatch, mmlp.ContentTypeCanonResults, frame)
	if w.Code != http.StatusOK {
		t.Fatalf("canon batch: %d %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); ct != mmlp.ContentTypeCanonResults {
		t.Fatalf("Content-Type = %q", ct)
	}
	items, err := canon.DecodeResults(w.Body.Bytes())
	if err != nil {
		t.Fatalf("result frame did not decode: %v", err)
	}
	if len(items) != n {
		t.Fatalf("got %d records, want %d", len(items), n)
	}
	byIndex := make(map[int]mmlp.BatchItem, n)
	for _, it := range items {
		if it.Error != "" {
			t.Fatalf("job %d failed: %s", it.Index, it.Error)
		}
		if _, dup := byIndex[it.Index]; dup {
			t.Fatalf("index %d emitted twice", it.Index)
		}
		byIndex[it.Index] = it
	}
	for _, line := range bytes.Split(bytes.TrimSpace(jw.Body.Bytes()), []byte("\n")) {
		var want mmlp.BatchItem
		if err := json.Unmarshal(line, &want); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		got, ok := byIndex[want.Index]
		if !ok {
			t.Fatalf("binary frame missing index %d", want.Index)
		}
		if !got.Cached {
			t.Fatal("canon batch job missed the cache — encodings do not share lines")
		}
		if got.Status != want.Status || got.Utility != want.Utility || got.UpperBound != want.UpperBound {
			t.Fatalf("job %d: binary %+v vs ndjson %+v", want.Index, got, want)
		}
		for v := range want.X {
			if got.X[v] != want.X[v] {
				t.Fatalf("job %d: X[%d] = %v, want %v", want.Index, v, got.X[v], want.X[v])
			}
		}
	}

	// The axes are independent: canon request with default NDJSON response.
	w = rawPost(h, "/v1/batch", mmlp.ContentTypeCanonBatch, "", frame)
	if w.Code != http.StatusOK || w.Header().Get("Content-Type") != mmlp.ContentTypeNDJSON {
		t.Fatalf("canon-in ndjson-out: %d %q", w.Code, w.Header().Get("Content-Type"))
	}
	if got := len(bytes.Split(bytes.TrimSpace(w.Body.Bytes()), []byte("\n"))); got != n {
		t.Fatalf("ndjson lines = %d, want %d", got, n)
	}

	// And a JSON request may ask for the binary frame.
	w = rawPost(h, "/v1/batch", "application/json", mmlp.ContentTypeCanonResults, body)
	if w.Code != http.StatusOK || w.Header().Get("Content-Type") != mmlp.ContentTypeCanonResults {
		t.Fatalf("json-in binary-out: %d %q", w.Code, w.Header().Get("Content-Type"))
	}
	if items, err = canon.DecodeResults(w.Body.Bytes()); err != nil || len(items) != n {
		t.Fatalf("json-in binary-out frame: %d items, %v", len(items), err)
	}
}

// TestBatchEndpointCanonErrors: frame-level failures are request-level
// 400s; payload-level failures are per-job error records.
func TestBatchEndpointCanonErrors(t *testing.T) {
	h := testServer(t, 1<<20)
	valid := engine.EncodeCanon(gen.TriNecklace(2), engine.Options{})

	if w := rawPost(h, "/v1/batch", mmlp.ContentTypeCanonBatch, "", []byte("junk")); w.Code != http.StatusBadRequest {
		t.Fatalf("junk frame: status %d", w.Code)
	}
	empty := canon.AppendBatch(nil, nil)
	if w := rawPost(h, "/v1/batch", mmlp.ContentTypeCanonBatch, "", empty); w.Code != http.StatusBadRequest {
		t.Fatalf("empty frame: status %d", w.Code)
	}
	frame := canon.AppendBatch(nil, [][]byte{valid})
	if w := rawPost(h, "/v1/batch", mmlp.ContentTypeCanonBatch, "", frame[:len(frame)-2]); w.Code != http.StatusBadRequest {
		t.Fatalf("truncated frame: status %d", w.Code)
	}

	// A frame whose inner payload is truncated-but-framed cannot be built
	// with AppendBatch (it checks nothing) — hand-build one: the frame
	// parser only verifies the solve magic, so the job is accepted and the
	// decode error surfaces as that job's error record.
	bad := append(append([]byte{}, valid...), 0xFF) // trailing byte: frame-valid, decode-invalid
	frame = canon.AppendBatch(nil, [][]byte{valid, bad})
	w := rawPost(h, "/v1/batch", mmlp.ContentTypeCanonBatch, mmlp.ContentTypeCanonResults, frame)
	if w.Code != http.StatusOK {
		t.Fatalf("mixed frame: status %d %s", w.Code, w.Body)
	}
	items, err := canon.DecodeResults(w.Body.Bytes())
	if err != nil || len(items) != 2 {
		t.Fatalf("mixed frame results: %d items, %v", len(items), err)
	}
	for _, it := range items {
		switch it.Index {
		case 0:
			if it.Error != "" {
				t.Fatalf("good job failed: %s", it.Error)
			}
		case 1:
			if it.Error == "" {
				t.Fatal("bad payload produced no error record")
			}
		default:
			t.Fatalf("unexpected index %d", it.Index)
		}
	}
}

// benchServer builds a cached handler and warms one instance through both
// encodings so the benchmarked request is the steady-state cache-hit path.
func benchServer(b *testing.B) (*server, []byte, string) {
	b.Helper()
	pool := batch.NewPool(batch.Options{Workers: 2, Queue: 4, CacheBytes: 1 << 20})
	b.Cleanup(pool.Close)
	h := newServer(pool, 1<<20)
	in := gen.Random(gen.RandomConfig{Agents: 16, MaxDegI: 3, MaxDegK: 3, ExtraCons: 4, ExtraObjs: 2}, 42)
	payload := engine.EncodeCanon(in, engine.Options{R: 3, DisableSpecialCases: true})
	raw, err := json.Marshal(in)
	if err != nil {
		b.Fatal(err)
	}
	body := `{"instance":` + string(raw) + `,"r":3,"disable_special_cases":true}`
	if w := rawPost(h, "/v1/solve", mmlp.ContentTypeCanon, "", payload); w.Code != http.StatusOK {
		b.Fatalf("warm solve: %d %s", w.Code, w.Body)
	}
	return h, payload, body
}

// BenchmarkWireSolveJSON measures a warm /v1/solve request on the JSON
// encoding end-to-end: HTTP routing, body decode, cache hit, response.
func BenchmarkWireSolveJSON(b *testing.B) {
	h, _, body := benchServer(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if w := post(h, "/v1/solve", body); w.Code != http.StatusOK {
			b.Fatalf("status %d", w.Code)
		}
	}
}

// BenchmarkWireSolveCanon measures the same warm request on the canon
// encoding: the body is hashed, never decoded, and answered from cache.
func BenchmarkWireSolveCanon(b *testing.B) {
	h, payload, _ := benchServer(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if w := rawPost(h, "/v1/solve", mmlp.ContentTypeCanon, "", payload); w.Code != http.StatusOK {
			b.Fatalf("status %d", w.Code)
		}
	}
}
