package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"mime"
	"net/http"
	"slices"
	"strconv"
	"strings"
	"time"

	"repro/internal/batch"
	"repro/internal/canon"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/httperr"
	"repro/internal/mmlp"
	"repro/internal/obs"
	"repro/internal/shard"
)

// server routes HTTP traffic onto a batch.Pool.
type server struct {
	pool    *batch.Pool
	maxBody int64
	mux     *http.ServeMux
	// handler is mux wrapped in the error-envelope layer, so the mux's own
	// 404/405 fallbacks speak the unified JSON envelope too.
	handler http.Handler

	// shed switches /v1/solve admission to the non-blocking TrySubmit
	// path: a full queue answers 429 + Retry-After instead of parking the
	// connection. /v1/batch keeps the blocking path regardless — its
	// backpressure is streaming-shaped by design (results flow while later
	// jobs wait), so parking the submitter goroutine there is correct.
	shed bool

	// fault is the chaos-injection layer (-fault-spec); nil in production.
	// Held here only so its counter reaches /statsz and /metrics — the
	// injection itself wraps the whole handler in main.
	fault *fault.Injector

	// slowLogOn/slowLog gate the per-request breakdown log on /v1/solve:
	// disabled by default, enabled by -slow-log (0 logs every solve).
	// logger is injectable for tests; defaults to slog's process logger.
	slowLogOn bool
	slowLog   time.Duration
	logger    *slog.Logger
}

// newServer wires the endpoints. maxBody bounds every request body; bodies
// beyond it are rejected with 413.
func newServer(pool *batch.Pool, maxBody int64) *server {
	s := &server{pool: pool, maxBody: maxBody, mux: http.NewServeMux(), logger: slog.Default()}
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("POST /v1/delta", s.handleDelta)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/capabilities", s.handleCapabilities)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /statsz", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /admin/ring", s.handleRing)
	s.handler = httperr.Envelope(s.mux)
	return s
}

// enableSlowLog turns on the slow-solve breakdown log for solves at or
// above threshold (0 = every solve).
func (s *server) enableSlowLog(threshold time.Duration) {
	s.slowLogOn = true
	s.slowLog = threshold
}

// enableShed switches /v1/solve to load-shedding admission.
func (s *server) enableShed() { s.shed = true }

// setFault attaches the chaos injector for stats surfacing.
func (s *server) setFault(in *fault.Injector) { s.fault = in }

// deadlineCtx applies a propagated X-Mmlp-Deadline-Ms header to the
// request context. With no header (the common case) it returns the
// context untouched and allocates nothing — the header constant is in
// canonical MIME form, so the absent-header Get is a map miss. cancel is
// non-nil exactly when a deadline was applied.
func deadlineCtx(r *http.Request) (ctx context.Context, cancel context.CancelFunc, err error) {
	ctx = r.Context()
	h := r.Header.Get(obs.DeadlineHeader)
	if h == "" {
		return ctx, nil, nil
	}
	ms, perr := strconv.ParseInt(h, 10, 64)
	if perr != nil || ms <= 0 {
		return nil, nil, fmt.Errorf("bad %s header %q: want a positive integer millisecond count", obs.DeadlineHeader, h)
	}
	ctx, cancel = context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
	return ctx, cancel, nil
}

// retryAfterSecs renders a Retry-After value from the live queue-wait
// median: the time by which half of recently admitted jobs had left the
// queue is the natural "come back when a slot has likely opened" hint.
// Whole seconds (the header's unit), minimum 1.
func retryAfterSecs(p50 time.Duration) string {
	secs := (p50 + time.Second - 1) / time.Second
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(int64(secs), 10)
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// writeError emits the unified error envelope; code is one of the
// mmlp.ErrCode* constants.
func writeError(w http.ResponseWriter, status int, code string, err error) {
	httperr.Write(w, status, code, err)
}

// errStatus maps a failed job onto its HTTP status and machine code —
// the one translation table shared by /v1/solve and /v1/delta.
func errStatus(err error) (int, string) {
	switch {
	case errors.Is(err, engine.ErrBaseUnknown):
		// The named base is not cached here; the client falls back to a
		// full solve (and the router relays this without marking the shard
		// down — a cold cache is not a failure).
		return http.StatusNotFound, mmlp.ErrCodeBaseUnknown
	case errors.Is(err, mmlp.ErrInvalid):
		return http.StatusBadRequest, mmlp.ErrCodeInvalidArgument
	case errors.Is(err, batch.ErrExpiredInQueue):
		// The deadline died in the queue: the kernel never ran. 504 tells
		// the client (and the router) this was pure queueing lateness, not
		// a failed solve.
		return http.StatusGatewayTimeout, mmlp.ErrCodeDeadlineExceeded
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable, mmlp.ErrCodeUnavailable
	default:
		return http.StatusInternalServerError, mmlp.ErrCodeInternal
	}
}

// decode reads one JSON body into dst, mapping oversized bodies to 413 and
// malformed JSON to 400 via the returned status code.
func (s *server) decode(w http.ResponseWriter, r *http.Request, dst any) (int, error) {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return http.StatusRequestEntityTooLarge, fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit)
		}
		return http.StatusBadRequest, fmt.Errorf("malformed JSON: %w", err)
	}
	return 0, nil
}

// mediaType extracts the request's media type; parameters (charset etc.)
// are irrelevant here, and an absent header means JSON.
func mediaType(r *http.Request) string {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return mmlp.ContentTypeJSON
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return ct
	}
	return mt
}

// acceptsCanonResults reports whether the client asked for the binary
// result frame on /v1/batch.
func acceptsCanonResults(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), mmlp.ContentTypeCanonResults)
}

// readRaw reads a binary body whole, mapping oversized bodies to 413.
func (s *server) readRaw(w http.ResponseWriter, r *http.Request) ([]byte, int, error) {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return nil, http.StatusRequestEntityTooLarge, fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit)
		}
		return nil, http.StatusBadRequest, err
	}
	return body, 0, nil
}

// handleSolve solves one instance synchronously. The request is JSON by
// default; Content-Type: application/x-mmlp-canon submits the canon wire
// payload instead — keyed by its hash, decoded only on a cache miss. The
// response is JSON either way.
func (s *server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var job batch.Job
	if mediaType(r) == mmlp.ContentTypeCanon {
		payload, code, err := s.readRaw(w, r)
		if err != nil {
			writeError(w, code, httperr.CodeForStatus(code), err)
			return
		}
		if !canon.SniffSolve(payload) {
			writeError(w, http.StatusBadRequest, mmlp.ErrCodeInvalidArgument, fmt.Errorf("canon body does not start with %q", canon.SolveMagic))
			return
		}
		job = batch.JobFromCanon(payload)
	} else {
		var req mmlp.SolveRequest
		if code, err := s.decode(w, r, &req); err != nil {
			writeError(w, code, httperr.CodeForStatus(code), err)
			return
		}
		var err error
		if job, err = batch.JobFromRequest(&req); err != nil {
			writeError(w, http.StatusBadRequest, mmlp.ErrCodeInvalidArgument, err)
			return
		}
	}
	traceID := r.Header.Get(obs.TraceHeader)
	ctx, cancel, err := deadlineCtx(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, mmlp.ErrCodeInvalidArgument, err)
		return
	}
	if cancel != nil {
		defer cancel()
	}
	var res batch.Result
	if s.shed {
		res = s.doShed(ctx, job)
		if errors.Is(res.Err, batch.ErrQueueFull) {
			w.Header().Set("Retry-After", retryAfterSecs(s.pool.QueueWaitP50()))
			writeError(w, http.StatusTooManyRequests, mmlp.ErrCodeOverloaded, res.Err)
			return
		}
	} else {
		res = s.pool.Do(ctx, job)
	}
	if res.Err != nil {
		status, code := errStatus(res.Err)
		writeError(w, status, code, res.Err)
		return
	}
	if traceID != "" {
		w.Header().Set(obs.TraceHeader, traceID)
	}
	resp := batch.ResponseFromResult(res)
	// The RawQuery guard keeps query parsing (which allocates) off the
	// default path: plain solves stay within the warm-path alloc budget.
	if r.URL.RawQuery != "" && r.URL.Query().Get("trace") == "1" {
		resp.Trace = res.Trace.MSMap()
	}
	w.Header().Set("Content-Type", "application/json")
	encStart := time.Now()
	json.NewEncoder(w).Encode(resp)
	enc := time.Since(encStart)
	s.pool.ObserveStage(obs.StageEncode, enc)
	if s.slowLogOn && res.Latency >= s.slowLog {
		s.logSlow(traceID, &res, enc)
	}
}

// handleDelta re-solves a cached base with an edit set applied: the dirty
// agents — those within the kernel's locality radius of an edited row —
// are re-priced and everything else is spliced from the base's record,
// bit-identically to a cold solve of the edited instance. Delta jobs share
// the pool's workers, queue and admission ledger with full solves, so
// shedding and deadline propagation behave exactly as on /v1/solve. A base
// this shard does not hold answers 404/base_unknown; the client (or the
// router's caller) falls back to a full solve, which also seeds the base
// for the next delta.
func (s *server) handleDelta(w http.ResponseWriter, r *http.Request) {
	var req mmlp.DeltaRequest
	if code, err := s.decode(w, r, &req); err != nil {
		writeError(w, code, httperr.CodeForStatus(code), err)
		return
	}
	job, err := batch.JobFromDelta(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, mmlp.ErrCodeInvalidArgument, err)
		return
	}
	traceID := r.Header.Get(obs.TraceHeader)
	ctx, cancel, err := deadlineCtx(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, mmlp.ErrCodeInvalidArgument, err)
		return
	}
	if cancel != nil {
		defer cancel()
	}
	var res batch.Result
	if s.shed {
		res = s.doShed(ctx, job)
		if errors.Is(res.Err, batch.ErrQueueFull) {
			w.Header().Set("Retry-After", retryAfterSecs(s.pool.QueueWaitP50()))
			writeError(w, http.StatusTooManyRequests, mmlp.ErrCodeOverloaded, res.Err)
			return
		}
	} else {
		res = s.pool.Do(ctx, job)
	}
	if res.Err != nil {
		status, code := errStatus(res.Err)
		writeError(w, status, code, res.Err)
		return
	}
	if traceID != "" {
		w.Header().Set(obs.TraceHeader, traceID)
	}
	resp := batch.DeltaResponseFromResult(res)
	if r.URL.RawQuery != "" && r.URL.Query().Get("trace") == "1" {
		resp.Trace = res.Trace.MSMap()
	}
	w.Header().Set("Content-Type", "application/json")
	encStart := time.Now()
	json.NewEncoder(w).Encode(resp)
	enc := time.Since(encStart)
	s.pool.ObserveStage(obs.StageEncode, enc)
	if s.slowLogOn && res.Latency >= s.slowLog {
		s.logSlow(traceID, &res, enc)
	}
}

// handleCapabilities advertises what this process serves — endpoints,
// engines, content types and wire limits — so clients and the router can
// feature-detect (e.g. whether /v1/delta exists) instead of probing with
// requests that may 404.
func (s *server) handleCapabilities(w http.ResponseWriter, _ *http.Request) {
	caps := mmlp.Capabilities{
		Service: "mmlpserve",
		Endpoints: []string{
			"/v1/solve", "/v1/delta", "/v1/batch", "/v1/capabilities",
			"/healthz", "/statsz", "/metrics", "/admin/ring",
		},
		Engines: mmlp.EngineNames(),
		ContentTypes: []string{
			mmlp.ContentTypeJSON, mmlp.ContentTypeCanon, mmlp.ContentTypeCanonBatch,
			mmlp.ContentTypeCanonResults, mmlp.ContentTypeNDJSON,
		},
		MaxWireR:        mmlp.MaxWireR,
		MaxWireBinIters: mmlp.MaxWireBinIters,
		MaxWireAgents:   mmlp.MaxWireAgents,
		MaxWireEdits:    mmlp.MaxWireEdits,
		MaxBodyBytes:    s.maxBody,
		Delta:           true,
		Shed:            s.shed,
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(caps)
}

// doShed is Pool.Do over the non-blocking admission path: a full queue
// surfaces as ErrQueueFull instead of blocking the connection.
func (s *server) doShed(ctx context.Context, job batch.Job) batch.Result {
	ch := make(chan batch.Result, 1)
	if err := s.pool.TrySubmit(ctx, 0, job, func(r batch.Result) { ch <- r }); err != nil {
		return batch.Result{Err: err}
	}
	return <-ch
}

// handleBatch solves many instances and streams one result record per job
// as it completes. Records carry the job's request index; they arrive in
// completion order, not request order. The request is a JSON BatchRequest
// by default, or a canon batch frame under Content-Type
// application/x-mmlp-canon-batch; the response is NDJSON unless Accept
// names application/x-mmlp-canon-results, which selects the binary result
// frame. The two axes are independent: any request encoding can pick
// either response encoding.
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var jobs []batch.Job
	if mediaType(r) == mmlp.ContentTypeCanonBatch {
		frame, code, err := s.readRaw(w, r)
		if err != nil {
			writeError(w, code, httperr.CodeForStatus(code), err)
			return
		}
		payloads, err := canon.SplitBatch(frame)
		if err != nil {
			writeError(w, http.StatusBadRequest, mmlp.ErrCodeInvalidArgument, fmt.Errorf("malformed batch frame: %w", err))
			return
		}
		if len(payloads) == 0 {
			writeError(w, http.StatusBadRequest, mmlp.ErrCodeInvalidArgument, errors.New("batch has no jobs"))
			return
		}
		jobs = make([]batch.Job, len(payloads))
		for i, p := range payloads {
			jobs[i] = batch.JobFromCanon(p)
		}
	} else {
		var req mmlp.BatchRequest
		if code, err := s.decode(w, r, &req); err != nil {
			writeError(w, code, httperr.CodeForStatus(code), err)
			return
		}
		if len(req.Jobs) == 0 {
			writeError(w, http.StatusBadRequest, mmlp.ErrCodeInvalidArgument, errors.New("batch has no jobs"))
			return
		}
		jobs = make([]batch.Job, len(req.Jobs))
		for i := range req.Jobs {
			job, err := batch.JobFromRequest(&req.Jobs[i])
			if err != nil {
				writeError(w, http.StatusBadRequest, mmlp.ErrCodeInvalidArgument, fmt.Errorf("job %d: %w", i, err))
				return
			}
			jobs[i] = job
		}
	}

	// The propagated deadline bounds every job in the batch: jobs still
	// queued when it passes are reported expired instead of solved late.
	ctx, cancel, err := deadlineCtx(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, mmlp.ErrCodeInvalidArgument, err)
		return
	}
	if cancel != nil {
		defer cancel()
	}

	flusher, _ := w.(http.Flusher)
	var emit func(mmlp.BatchItem)
	if acceptsCanonResults(r) {
		w.Header().Set("Content-Type", mmlp.ContentTypeCanonResults)
		w.Write(canon.AppendResultsHeader(nil))
		var buf []byte
		emit = func(item mmlp.BatchItem) {
			buf = canon.AppendResult(buf[:0], &item)
			w.Write(buf)
		}
	} else {
		w.Header().Set("Content-Type", mmlp.ContentTypeNDJSON)
		enc := json.NewEncoder(w)
		emit = func(item mmlp.BatchItem) { enc.Encode(item) }
	}

	// Submission runs on its own goroutine so the pool's backpressure never
	// stalls the response: completed results stream out while later jobs
	// are still waiting for a queue slot.
	results := make(chan batch.Result, len(jobs))
	type submitOutcome struct {
		submitted int
		err       error
	}
	submitDone := make(chan submitOutcome, 1)
	go func() {
		n := 0
		for i := range jobs {
			if err := s.pool.Submit(ctx, i, jobs[i], func(res batch.Result) { results <- res }); err != nil {
				submitDone <- submitOutcome{n, err} // client gone or pool closing
				return
			}
			n++
		}
		submitDone <- submitOutcome{n, nil}
	}()

	submitted := -1 // unknown until the submitter finishes
	var submitErr error
	for emitted := 0; submitted == -1 || emitted < submitted; {
		select {
		case res := <-results:
			emit(batch.ItemFromResult(res))
			if flusher != nil {
				flusher.Flush()
			}
			emitted++
		case out := <-submitDone:
			submitted, submitErr = out.submitted, out.err
			submitDone = nil // disable this case; drain the rest of results
		}
	}
	// The contract is one record per job: jobs that never made it into the
	// pool still get an error item, so clients keying on index can tell a
	// dropped job from a lost response.
	for i := submitted; i < len(jobs); i++ {
		emit(batch.ItemFromResult(batch.Result{Index: i, Err: submitErr}))
	}
	if flusher != nil {
		flusher.Flush()
	}
}

// handleRing applies a topology update after a ring cutover: the router
// sends the new member set and this shard's own address, and the shard
// prunes every cached result whose key it no longer holds under the new
// assignment — keys are kept iff Self is among their first Replication
// distinct ring successors. A shard absent from Members keeps nothing.
// Pruning is idempotent, so re-delivered updates are harmless.
func (s *server) handleRing(w http.ResponseWriter, r *http.Request) {
	var upd mmlp.ShardRingUpdate
	if code, err := s.decode(w, r, &upd); err != nil {
		writeError(w, code, httperr.CodeForStatus(code), err)
		return
	}
	if len(upd.Members) == 0 {
		writeError(w, http.StatusBadRequest, mmlp.ErrCodeInvalidArgument, errors.New("ring update has no members"))
		return
	}
	ring, err := shard.New(upd.Members, upd.Replicas)
	if err != nil {
		writeError(w, http.StatusBadRequest, mmlp.ErrCodeInvalidArgument, err)
		return
	}
	rep := upd.Replication
	if rep < 1 {
		rep = 1
	}
	n := s.pool.PruneCache(func(k canon.Key) bool {
		return slices.Contains(ring.Successors(k, rep), upd.Self)
	})
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(mmlp.PruneResponse{Pruned: n})
}

// handleHealth reports liveness plus the build's VCS identity, so fleet
// scrapes can tell what each shard is running.
func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	rev, dirty := obs.BuildInfo()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"status\":\"ok\",\"workers\":%d,\"revision\":%q,\"dirty\":%v}\n", s.pool.Workers(), rev, dirty)
}

// handleStats reports the pool's aggregate activity. The cache block is
// present exactly when the result cache is enabled. With ?raw=1 the
// response is the typed machine block (mmlp.StatsRaw: exact counters,
// nanosecond latencies) that mmlprouter scrapes and sums into its fleet
// view; the default view is the human one with millisecond floats.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.pool.Stats()
	if r.URL.Query().Get("raw") == "1" {
		raw := batch.StatsRawFromStats(st)
		raw.FaultsInjected = s.fault.Count()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(raw)
		return
	}
	body := map[string]any{
		"workers":          st.Workers,
		"jobs":             st.Jobs,
		"errors":           st.Errors,
		"shed":             st.Shed,
		"deadline_expired": st.DeadlineExpired,
		"delta_hits":       st.DeltaHits,
		"delta_misses":     st.DeltaMisses,
		"dirty_agents":     st.DirtyAgents,
		"jobs_per_sec":     st.JobsPerSec,
		"p50_ms":           float64(st.P50.Microseconds()) / 1e3,
		"p99_ms":           float64(st.P99.Microseconds()) / 1e3,
		"max_ms":           float64(st.Max.Microseconds()) / 1e3,
		"allocs_per_job":   st.AllocsPerJob,
		"uptime_sec":       st.Elapsed.Seconds(),
	}
	if n := s.fault.Count(); n > 0 {
		body["faults_injected"] = n
	}
	if st.Cache != nil {
		body["cache"] = map[string]any{
			"hits":      st.Cache.Hits,
			"misses":    st.Cache.Misses,
			"coalesced": st.Cache.Coalesced,
			"evictions": st.Cache.Evictions,
			"pruned":    st.Cache.Pruned,
			"entries":   st.Cache.Entries,
			"bytes":     st.Cache.Bytes,
			"max_bytes": st.Cache.MaxBytes,
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(body)
}
