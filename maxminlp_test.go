package maxminlp

import (
	"context"
	"math"
	"testing"
)

func TestSolveLocalEndToEndGuarantee(t *testing.T) {
	// E1 in miniature: feasibility and the Theorem 1 ratio on random
	// general instances across (ΔI, ΔK, R).
	for seed := int64(0); seed < 8; seed++ {
		for _, deg := range [][2]int{{2, 2}, {3, 3}, {4, 2}} {
			in := GenerateRandom(RandomConfig{
				Agents: 8, MaxDegI: deg[0], MaxDegK: deg[1], ExtraCons: 2, ExtraObjs: 1,
			}, seed)
			exact, err := SolveExact(in)
			if err != nil {
				t.Fatal(err)
			}
			for _, R := range []int{2, 3, 5} {
				sol, err := SolveLocal(in, LocalOptions{R: R})
				if err != nil {
					t.Fatal(err)
				}
				if err := in.CheckFeasible(sol.X, 0); err != nil {
					t.Fatalf("seed %d deg %v R %d: %v", seed, deg, R, err)
				}
				bound := RatioBound(in.DegreeI(), in.DegreeK(), R)
				if sol.Utility*bound < exact.Utility-1e-7 {
					t.Fatalf("seed %d deg %v R %d: utility %v × bound %v < opt %v (ratio %.3f)",
						seed, deg, R, sol.Utility, bound, exact.Utility, exact.Utility/sol.Utility)
				}
				if sol.UpperBound < exact.Utility-1e-6 {
					t.Fatalf("upper bound %v below optimum %v", sol.UpperBound, exact.Utility)
				}
			}
		}
	}
}

func TestSolveLocalDistributedMatches(t *testing.T) {
	in := GenerateRandom(RandomConfig{Agents: 6, MaxDegI: 3, MaxDegK: 2, ExtraCons: 1}, 4)
	a, err := SolveLocal(in, LocalOptions{R: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, info, err := SolveLocalDistributed(in, LocalOptions{R: 3})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.X {
		if math.Abs(a.X[v]-b.X[v]) > 0 {
			t.Fatalf("x[%d]: central %v distributed %v", v, a.X[v], b.X[v])
		}
	}
	if info.Rounds != 12*(3-2)+8 {
		t.Fatalf("rounds = %d", info.Rounds)
	}
	if info.Messages == 0 || info.Bytes == 0 || info.MaxMessageBytes == 0 {
		t.Fatalf("traffic not recorded: %+v", info)
	}
}

func TestSolveLocalDistributedCompactOption(t *testing.T) {
	in := GenerateRandom(RandomConfig{Agents: 6, MaxDegI: 3, MaxDegK: 2, ExtraCons: 1}, 4)
	a, infoA, err := SolveLocalDistributed(in, LocalOptions{R: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, infoB, err := SolveLocalDistributed(in, LocalOptions{R: 3, CompactProtocol: true})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.X {
		if a.X[v] != b.X[v] {
			t.Fatalf("protocols disagree at %d", v)
		}
	}
	if infoB.Bytes >= infoA.Bytes {
		t.Fatalf("compact protocol not smaller: %d vs %d", infoB.Bytes, infoA.Bytes)
	}
	if infoA.Rounds != infoB.Rounds {
		t.Fatalf("round counts differ: %d vs %d", infoA.Rounds, infoB.Rounds)
	}
}

func TestSolveLocalZeroOptimum(t *testing.T) {
	in := NewInstance(1)
	in.AddConstraint(0, 1)
	in.Objs = append(in.Objs, Objective{})
	sol, err := SolveLocal(in, LocalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusZeroOptimum || sol.Utility != 0 {
		t.Fatalf("status %v utility %v", sol.Status, sol.Utility)
	}
}

func TestSolveLocalUnbounded(t *testing.T) {
	in := NewInstance(1)
	in.AddObjective(0, 1)
	sol, err := SolveLocal(in, LocalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusUnbounded {
		t.Fatalf("status %v", sol.Status)
	}
	ex, err := SolveExact(in)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Status != StatusUnbounded {
		t.Fatalf("exact status %v", ex.Status)
	}
}

func TestSolveLocalSingletonConstraintCase(t *testing.T) {
	// ΔI = 1 dispatches to the optimal [17] algorithm.
	in := NewInstance(2)
	in.AddConstraint(0, 2)
	in.AddConstraint(1, 4)
	in.AddObjective(0, 1, 1, 1)
	sol, err := SolveLocal(in, LocalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status %v", sol.Status)
	}
	if math.Abs(sol.Utility-0.75) > 1e-12 {
		t.Fatalf("utility %v, want 0.75", sol.Utility)
	}
}

func TestSolveLocalSingletonObjectiveCase(t *testing.T) {
	// ΔK = 1 dispatches to the optimal [17] algorithm.
	in := NewInstance(2)
	in.AddConstraint(0, 1, 1, 1)
	in.AddObjective(0, 1)
	in.AddObjective(1, 1)
	sol, err := SolveLocal(in, LocalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status %v", sol.Status)
	}
	exact, _ := SolveExact(in)
	if math.Abs(sol.Utility-exact.Utility) > 1e-9 {
		t.Fatalf("utility %v vs optimum %v", sol.Utility, exact.Utility)
	}
	// The general pipeline must also run when special cases are disabled.
	gen, err := SolveLocal(in, LocalOptions{DisableSpecialCases: true, R: 3})
	if err != nil {
		t.Fatal(err)
	}
	if gen.Status != StatusApproximate {
		t.Fatalf("general pipeline status %v", gen.Status)
	}
	if err := in.CheckFeasible(gen.X, 0); err != nil {
		t.Fatal(err)
	}
}

func TestSolveLocalRejectsBadInput(t *testing.T) {
	bad := NewInstance(1)
	bad.AddConstraint(5, 1)
	if _, err := SolveLocal(bad, LocalOptions{}); err == nil {
		t.Fatal("invalid instance accepted")
	}
	ok := NewInstance(1)
	ok.AddConstraint(0, 1)
	ok.AddObjective(0, 1)
	if _, err := SolveLocal(ok, LocalOptions{R: 1}); err == nil {
		t.Fatal("R=1 accepted")
	}
}

func TestSolveExactRationalAgrees(t *testing.T) {
	in := GenerateRandom(RandomConfig{Agents: 5, MaxDegI: 2, MaxDegK: 2, ExtraCons: 1}, 9)
	a, err := SolveExact(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveExactRational(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Utility-b.Utility) > 1e-7 {
		t.Fatalf("float %v vs rational %v", a.Utility, b.Utility)
	}
	if b.Status != StatusOptimal {
		t.Fatalf("status %v", b.Status)
	}
}

func TestSolveSafeBaseline(t *testing.T) {
	in := GenerateRandom(RandomConfig{Agents: 8, MaxDegI: 3, MaxDegK: 3, ExtraCons: 2}, 2)
	safe, err := SolveSafe(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.CheckFeasible(safe.X, 0); err != nil {
		t.Fatal(err)
	}
	exact, _ := SolveExact(in)
	if safe.Utility*float64(in.DegreeI()) < exact.Utility-1e-7 {
		t.Fatalf("safe worse than ΔI guarantee: %v vs opt %v", safe.Utility, exact.Utility)
	}
}

func TestRatioBoundAndThreshold(t *testing.T) {
	if got := RatioBound(2, 2, 3); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("RatioBound(2,2,3) = %v, want 1.5", got)
	}
	if got := RatioBound(1, 1, 3); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("degrees clamp to 2: got %v", got)
	}
	if got := LocalityThreshold(3, 3); math.Abs(got-2) > 1e-12 {
		t.Fatalf("LocalityThreshold(3,3) = %v, want 2", got)
	}
	// Bound decreases in R towards the threshold.
	if RatioBound(3, 3, 10) >= RatioBound(3, 3, 3) {
		t.Fatal("bound not decreasing in R")
	}
	if RatioBound(3, 3, 1000) < LocalityThreshold(3, 3) {
		t.Fatal("bound below threshold")
	}
}

func TestSolveLocalSelfCheck(t *testing.T) {
	in := GenerateRandom(RandomConfig{Agents: 10, MaxDegI: 3, MaxDegK: 3, ExtraCons: 3}, 6)
	sol, err := SolveLocal(in, LocalOptions{R: 3, SelfCheck: true, DisableSpecialCases: true})
	if err != nil {
		t.Fatalf("self-check rejected a valid run: %v", err)
	}
	if err := in.CheckFeasible(sol.X, 0); err != nil {
		t.Fatal(err)
	}
}

func TestSolveExactCertified(t *testing.T) {
	in := GenerateRandom(RandomConfig{Agents: 8, MaxDegI: 3, MaxDegK: 2, ExtraCons: 2}, 3)
	sol, cert, err := SolveExactCertified(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := cert.Verify(in, 1e-6); err != nil {
		t.Fatalf("certificate invalid: %v", err)
	}
	if math.Abs(cert.Bound-sol.Utility) > 1e-5*math.Max(1, sol.Utility) {
		t.Fatalf("certified bound %v far from optimum %v", cert.Bound, sol.Utility)
	}
	// The certificate really is an upper bound for the local solution too.
	local, err := SolveLocal(in, LocalOptions{R: 3})
	if err != nil {
		t.Fatal(err)
	}
	if local.Utility > cert.Bound+1e-6 {
		t.Fatalf("local utility %v exceeds certified bound %v", local.Utility, cert.Bound)
	}
	bad := NewInstance(1)
	bad.AddConstraint(5, 1)
	if _, _, err := SolveExactCertified(bad); err == nil {
		t.Fatal("invalid instance accepted")
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		StatusApproximate: "approximate",
		StatusOptimal:     "optimal",
		StatusUnbounded:   "unbounded",
		StatusZeroOptimum: "zero-optimum",
	} {
		if s.String() != want {
			t.Fatalf("%d → %q", s, s.String())
		}
	}
	if Status(77).String() == "" {
		t.Fatal("unknown status should render")
	}
}

func TestApplicationGeneratorsEndToEnd(t *testing.T) {
	// The three application workloads run through the full pipeline.
	sensor := GenerateSensorGrid(SensorGridConfig{Width: 3, Height: 3, Sensors: 4, Fan: 2}, 1)
	bw := GenerateBandwidth(BandwidthConfig{Links: 8, Customers: 3, PathsPerCustomer: 2, MaxPathLen: 3}, 1)
	eqs := GenerateEquations(EquationsConfig{Vars: 4, Rows: 3, Density: 0.6}, 1)
	for name, in := range map[string]*Instance{"sensor": sensor, "bandwidth": bw, "equations": eqs} {
		sol, err := SolveLocal(in, LocalOptions{R: 3})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := in.CheckFeasible(sol.X, 0); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		exact, err := SolveExact(in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		bound := RatioBound(in.DegreeI(), in.DegreeK(), 3)
		if sol.Utility*bound < exact.Utility-1e-7 {
			t.Fatalf("%s: ratio %v exceeds bound %v", name, exact.Utility/sol.Utility, bound)
		}
	}
}

func TestTriNecklaceEndToEnd(t *testing.T) {
	in := GenerateTriNecklace(6)
	sol, err := SolveLocal(in, LocalOptions{R: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.CheckFeasible(sol.X, 0); err != nil {
		t.Fatal(err)
	}
	exact, _ := SolveExact(in)
	if ratio := exact.Utility / sol.Utility; ratio > RatioBound(2, 3, 4)+1e-9 {
		t.Fatalf("necklace ratio %v exceeds bound %v", ratio, RatioBound(2, 3, 4))
	}
}

func TestSolveBatchCached(t *testing.T) {
	// Duplicate jobs through the public batch surface with the result
	// cache enabled: every result must be bit-identical to the sequential
	// solve, the repeats must be tagged Cached, and the stats must carry
	// the cache counters.
	in := GenerateRandom(RandomConfig{Agents: 14, MaxDegI: 3, MaxDegK: 3, ExtraCons: 4, ExtraObjs: 2}, 5)
	want, err := SolveLocal(in, LocalOptions{R: 3, DisableSpecialCases: true})
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]BatchJob, 12)
	for i := range jobs {
		jobs[i] = BatchJob{In: in, Opts: LocalOptions{R: 3, DisableSpecialCases: true}}
	}
	res, stats, err := SolveBatch(context.Background(), jobs, BatchOptions{Workers: 3, CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	cached := 0
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if r.Cached {
			cached++
		}
		for v := range want.X {
			if r.Sol.X[v] != want.X[v] {
				t.Fatalf("job %d: X[%d] = %v, want %v", i, v, r.Sol.X[v], want.X[v])
			}
		}
	}
	if cached < len(jobs)-3 {
		t.Fatalf("cached results = %d of %d duplicates", cached, len(jobs))
	}
	if stats.Cache == nil || stats.Cache.Entries != 1 {
		t.Fatalf("batch cache stats = %+v", stats.Cache)
	}
}
