package maxminlp_test

import (
	"fmt"

	maxminlp "repro"
)

// ExampleSolveLocal demonstrates the paper's algorithm on a two-agent
// shared channel: the local algorithm finds the fair split.
func ExampleSolveLocal() {
	in := maxminlp.NewInstance(2)
	in.AddConstraint(0, 1, 1, 1) // x0 + x1 ≤ 1
	in.AddObjective(0, 1, 1, 1)  // both receivers hear both transmitters
	in.AddObjective(0, 1, 1, 1)

	sol, err := maxminlp.SolveLocal(in, maxminlp.LocalOptions{R: 3, DisableSpecialCases: true})
	if err != nil {
		panic(err)
	}
	fmt.Printf("x = [%.2f %.2f], utility %.2f\n", sol.X[0], sol.X[1], sol.Utility)
	// Output: x = [0.50 0.50], utility 1.00
}

// ExampleSolveExactCertified shows the dual certificate: an independently
// checkable proof that no feasible solution beats the reported optimum.
func ExampleSolveExactCertified() {
	in := maxminlp.NewInstance(2)
	in.AddConstraint(0, 1, 1, 1)
	in.AddObjective(0, 1)
	in.AddObjective(1, 1)

	sol, cert, err := maxminlp.SolveExactCertified(in)
	if err != nil {
		panic(err)
	}
	fmt.Printf("optimum %.2f, certified bound %.2f, certificate valid: %v\n",
		sol.Utility, cert.Bound, cert.Verify(in, 1e-9) == nil)
	// Output: optimum 0.50, certified bound 0.50, certificate valid: true
}

// ExampleRatioBound evaluates Theorem 1's guarantee for given degrees.
func ExampleRatioBound() {
	fmt.Printf("%.4f\n", maxminlp.RatioBound(2, 3, 5))
	fmt.Printf("%.4f\n", maxminlp.LocalityThreshold(2, 3))
	// Output:
	// 1.6667
	// 1.3333
}

// ExampleSolveLocalDistributed runs the algorithm as a real synchronous
// message-passing protocol and reports the locality profile.
func ExampleSolveLocalDistributed() {
	in := maxminlp.GenerateTriNecklace(8)
	sol, info, err := maxminlp.SolveLocalDistributed(in, maxminlp.LocalOptions{R: 3})
	if err != nil {
		panic(err)
	}
	fmt.Printf("utility %.2f in %d rounds\n", sol.Utility, info.Rounds)
	// Output: utility 1.50 in 20 rounds
}
